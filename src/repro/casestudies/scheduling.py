"""Case study 2: interference-aware job scheduling (Section 7.2, Figure 13).

Each evaluated workload runs 100 times at 50% memory-pool capacity against a
background interference whose Level of Interference is redrawn every 60 s —
uniformly from 0-50% for the random baseline and from 0-20% for the
interference-aware scheduler (which refuses to co-locate interference-heavy
jobs with sensitive ones).  The paper reports mean speedups of roughly
4% (Hypre), 2% (NekRS, SuperLU), 1% (BFS, HPL) and 0% (XSBench), and a
reduction of the 75th-percentile execution time of 1-5%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..profiler.level3 import Level3Profiler, SensitivityCurve
from ..scheduler.job import JobProfile
from ..scheduler.simulator import CoLocationResult, CoLocationStudy
from ..sim.platform import Platform
from ..workloads.base import WorkloadSpec
from ..workloads.registry import build_all


@dataclass(frozen=True)
class WorkloadSchedulingResult:
    """Baseline vs interference-aware execution-time distributions for one workload."""

    workload: str
    baseline: CoLocationResult
    aware: CoLocationResult

    @property
    def mean_speedup(self) -> float:
        """Relative reduction of the mean execution time."""
        if self.aware.mean <= 0:
            return 0.0
        return self.baseline.mean / self.aware.mean - 1.0

    @property
    def p75_reduction(self) -> float:
        """Relative reduction of the 75th-percentile execution time."""
        p75 = self.baseline.percentile(75)
        if p75 <= 0:
            return 0.0
        return 1.0 - self.aware.percentile(75) / p75

    @property
    def variability_reduction(self) -> float:
        """Relative reduction of the interquartile range."""
        if self.baseline.variability <= 0:
            return 0.0
        return 1.0 - self.aware.variability / self.baseline.variability

    def summary(self) -> dict:
        """Row used by the Figure-13 benchmark and EXPERIMENTS.md."""
        return {
            "workload": self.workload,
            "baseline": self.baseline.five_number_summary(),
            "interference_aware": self.aware.five_number_summary(),
            "mean_speedup": self.mean_speedup,
            "p75_reduction": self.p75_reduction,
        }


@dataclass(frozen=True)
class SchedulingCaseStudyResult:
    """Results for all evaluated workloads."""

    results: tuple[WorkloadSchedulingResult, ...]

    def result(self, workload: str) -> WorkloadSchedulingResult:
        """Look one workload's result up by name."""
        for r in self.results:
            if r.workload == workload:
                return r
        raise KeyError(f"no scheduling result for {workload!r}")

    def speedups(self) -> dict[str, float]:
        """Mean speedup per workload."""
        return {r.workload: r.mean_speedup for r in self.results}

    def most_improved(self) -> str:
        """The workload benefitting most from interference awareness."""
        return max(self.results, key=lambda r: r.mean_speedup).workload


class SchedulingCaseStudy:
    """Runs the interference-aware scheduling comparison for a set of workloads."""

    def __init__(
        self,
        local_fraction: float = 0.50,
        n_runs: int = 100,
        interval: float = 60.0,
        seed: int = 0,
    ) -> None:
        self.local_fraction = local_fraction
        self.n_runs = n_runs
        self.interval = interval
        self.seed = seed

    def sensitivity_of(self, spec: WorkloadSpec) -> SensitivityCurve:
        """Measure one workload's sensitivity curve on the pooled platform."""
        platform = Platform.pooled(spec.footprint_bytes, self.local_fraction)
        return Level3Profiler(seed=self.seed).sensitivity(spec, platform)

    def job_profile_of(self, spec: WorkloadSpec) -> JobProfile:
        """Build the submission-time job profile the scheduler would receive."""
        sensitivity = self.sensitivity_of(spec)
        remote_fraction = 1.0 - self.local_fraction
        return JobProfile(
            workload=spec.name,
            baseline_runtime=sensitivity.baseline_runtime,
            sensitivity=sensitivity,
            pool_gb=spec.footprint_bytes * remote_fraction / 1e9,
        )

    def study_workload(
        self,
        spec: WorkloadSpec,
        baseline_range: tuple[float, float] = (0.0, 50.0),
        aware_range: tuple[float, float] = (0.0, 20.0),
    ) -> WorkloadSchedulingResult:
        """Run the 100-repetition comparison for one workload."""
        sensitivity = self.sensitivity_of(spec)
        study = CoLocationStudy(
            baseline_runtime=sensitivity.baseline_runtime,
            sensitivity=sensitivity,
            interval=self.interval,
        )
        outcomes = study.compare_policies(
            n_runs=self.n_runs,
            baseline_range=baseline_range,
            aware_range=aware_range,
            seed=self.seed,
        )
        return WorkloadSchedulingResult(
            workload=spec.name,
            baseline=outcomes["baseline"],
            aware=outcomes["interference-aware"],
        )

    def run(self, specs: Optional[Sequence[WorkloadSpec]] = None) -> SchedulingCaseStudyResult:
        """Run the case study for all (or the given) workloads."""
        specs = list(specs) if specs is not None else build_all(1.0)
        results = tuple(self.study_workload(spec) for spec in specs)
        return SchedulingCaseStudyResult(results=results)
