"""The paper's case studies plus the trace-replay extension.

BFS data placement (Section 7.1), interference-aware scheduling
(Section 7.2), and :mod:`repro.casestudies.trace_replay` — real Slurm
``sacct`` traces replayed through the cluster simulator (ROADMAP item 3).
"""

from .bfs_placement import (
    BASELINE_ORDER,
    BFSCaseStudyResult,
    BFSPlacementCaseStudy,
    OPTIMIZED_ORDER,
    PlacementVariantResult,
    baseline_spec,
    optimized_spec,
    reordered_spec,
)
from .scheduling import (
    SchedulingCaseStudy,
    SchedulingCaseStudyResult,
    WorkloadSchedulingResult,
)
from .trace_replay import (
    TraceJobMapper,
    TraceReplayResult,
    TraceReplayStudy,
)

__all__ = [
    "BASELINE_ORDER",
    "BFSCaseStudyResult",
    "BFSPlacementCaseStudy",
    "OPTIMIZED_ORDER",
    "PlacementVariantResult",
    "baseline_spec",
    "optimized_spec",
    "reordered_spec",
    "SchedulingCaseStudy",
    "SchedulingCaseStudyResult",
    "WorkloadSchedulingResult",
    "TraceJobMapper",
    "TraceReplayResult",
    "TraceReplayStudy",
]
