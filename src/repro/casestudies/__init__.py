"""The paper's two case studies: BFS data placement and interference-aware scheduling."""

from .bfs_placement import (
    BASELINE_ORDER,
    BFSCaseStudyResult,
    BFSPlacementCaseStudy,
    OPTIMIZED_ORDER,
    PlacementVariantResult,
    baseline_spec,
    optimized_spec,
    reordered_spec,
)
from .scheduling import (
    SchedulingCaseStudy,
    SchedulingCaseStudyResult,
    WorkloadSchedulingResult,
)

__all__ = [
    "BASELINE_ORDER",
    "BFSCaseStudyResult",
    "BFSPlacementCaseStudy",
    "OPTIMIZED_ORDER",
    "PlacementVariantResult",
    "baseline_spec",
    "optimized_spec",
    "reordered_spec",
    "SchedulingCaseStudy",
    "SchedulingCaseStudyResult",
    "WorkloadSchedulingResult",
]
