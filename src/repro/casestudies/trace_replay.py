"""Replay a real Slurm trace through the pooled-memory cluster simulator.

The capacity-planning question the paper asks — *how much pooled memory does
a machine actually need?* — is only as strong as the workload driving it.
:class:`TraceReplayStudy` closes that gap: a ``sacct`` dump streamed through
:mod:`repro.data.slurm` becomes the job stream of a
:class:`~repro.scheduler.simulator.ClusterSimulator` run, so pool-aware
placement (:class:`~repro.scheduler.policies.PoolAwarePlacement`) is judged
against a machine's *measured* memory footprints and arrival process instead
of an analytic model.

Mapping contract (:class:`TraceJobMapper`):

* ``MaxRSS × NNodes`` is the job's aggregate footprint; the remote share
  (``1 - local_fraction`` of it) becomes ``JobProfile.pool_gb`` — converted
  binary-RSS-bytes → **decimal GB** through :func:`repro.config.units.
  bytes_to_gb`, the pinned convention of the scheduler layer.
* ``Elapsed`` becomes ``baseline_runtime``: the recorded runtime is taken as
  the interference-free baseline (the trace machine's own interference is
  not subtractable from accounting data — a documented limitation).
* ``Submit`` offsets (relative to the first replayed job) become arrivals,
  so queueing emerges from the real arrival process.
* Sensitivity hints are not in accounting data; a configurable default
  (``default_sensitivity`` / ``default_induced_loi``) stands in, making the
  replay a *capacity* study by default and an *interference* study when the
  caller supplies measured curves.

Multi-node trace jobs occupy **one** simulator node but carry their full
pooled footprint — capacity pressure is exact, node-count pressure is not
(follow-on in ROADMAP).  Jobs too large for any rack's pool are dropped and
counted (``unplaceable_jobs``), never silently shrunk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

from ..config.errors import SchedulingError
from ..config.units import bytes_to_gb
from ..data.slurm import IngestReport, TraceJob, read_sacct
from ..profiler.level3 import SensitivityCurve
from ..scheduler.cluster import Cluster
from ..scheduler.job import JobProfile
from ..scheduler.policies import make_policy
from ..scheduler.simulator import ClusterSimulator, ScheduleOutcome
from ..telemetry import trace_span

#: Workload label replayed jobs carry (``JobProfile.workload``); kept a
#: constant so per-workload groupings aggregate the whole trace.
TRACE_WORKLOAD = "trace"


@dataclass(frozen=True)
class TraceJobMapper:
    """Configurable :class:`TraceJob` → :class:`JobProfile` mapping.

    Attributes
    ----------
    local_fraction:
        Fraction of each job's footprint assumed served node-locally in the
        what-if machine; the rest is drawn from the rack pool.
    default_induced_loi:
        Level of Interference each replayed job is assumed to inject on its
        rack's pool link (percent of link peak).  Accounting data carries no
        bandwidth, so this is a modelling default, not a measurement.
    default_sensitivity:
        Sensitivity curve attached to every job (None = insensitive).
    min_runtime_s:
        Jobs shorter than this are clamped up, not dropped — sub-second
        accounting entries otherwise produce degenerate baselines.
    """

    local_fraction: float = 0.5
    default_induced_loi: float = 0.0
    default_sensitivity: Optional[SensitivityCurve] = None
    min_runtime_s: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.local_fraction <= 1.0:
            raise SchedulingError("local_fraction must be in [0, 1]")
        if self.default_induced_loi < 0:
            raise SchedulingError("default_induced_loi must be >= 0")
        if self.min_runtime_s <= 0:
            raise SchedulingError("min_runtime_s must be positive")

    def profile_of(self, job: TraceJob) -> JobProfile:
        """The submission-time profile a replayed trace job presents."""
        remote_bytes = job.footprint_bytes * (1.0 - self.local_fraction)
        return JobProfile(
            workload=TRACE_WORKLOAD,
            baseline_runtime=max(job.elapsed_s, self.min_runtime_s),
            sensitivity=self.default_sensitivity,
            induced_loi=self.default_induced_loi,
            pool_gb=bytes_to_gb(remote_bytes),
        )


@dataclass(frozen=True)
class TraceReplayResult:
    """Outcome of one trace replay: schedule statistics + ingestion report."""

    outcome: ScheduleOutcome
    ingest: dict
    jobs_replayed: int
    unplaceable_jobs: int
    peak_pool_demand_gb: float
    trace_span_s: float

    def summary(self) -> dict:
        """CLI/README-friendly summary of the replay."""
        finished = sum(1 for j in self.outcome.jobs if j.finished)
        return {
            "policy": self.outcome.policy,
            "jobs_replayed": self.jobs_replayed,
            "jobs_finished": finished,
            "unplaceable_jobs": self.unplaceable_jobs,
            "makespan_s": self.outcome.makespan,
            "mean_wait_s": self.outcome.mean_wait,
            "mean_slowdown": self.outcome.mean_slowdown,
            "peak_pool_demand_gb": self.peak_pool_demand_gb,
            "trace_span_s": self.trace_span_s,
            "ingest": self.ingest,
        }


class TraceReplayStudy:
    """Stream a ``sacct`` dump into one cluster-simulation run.

    The ingester stays streaming end to end: trace jobs are mapped to
    profiles one at a time and only the *replayed window* (post ``limit`` /
    ``window`` filtering) is materialised for the simulator — bounding a
    multi-month trace replay by the slice being studied, not the dump size.

    Parameters mirror :class:`~repro.scheduler.cluster.Cluster.build`;
    ``mapper`` carries the trace→profile defaults.
    """

    def __init__(
        self,
        n_racks: int = 4,
        nodes_per_rack: int = 16,
        pool_capacity_gb: float = 2048.0,
        local_memory_gb: float = 256.0,
        policy: str = "pool-aware",
        seed: int = 0,
        mapper: Optional[TraceJobMapper] = None,
    ) -> None:
        if pool_capacity_gb <= 0:
            raise SchedulingError("pool_capacity_gb must be positive")
        self.n_racks = n_racks
        self.nodes_per_rack = nodes_per_rack
        self.pool_capacity_gb = pool_capacity_gb
        self.local_memory_gb = local_memory_gb
        self.policy = policy
        self.seed = seed
        self.mapper = mapper if mapper is not None else TraceJobMapper()

    def run(
        self,
        source: Union[str, Path, Iterable[str]],
        limit: Optional[int] = None,
        window: Optional[tuple] = None,
    ) -> TraceReplayResult:
        """Replay ``source`` (a path or line stream) to completion."""
        report = IngestReport()
        profiles: list[JobProfile] = []
        arrivals: list[float] = []
        origin: Optional[float] = None
        unplaceable = 0
        last_submit = 0.0
        with trace_span("trace_replay.ingest"):
            for job in read_sacct(source, limit=limit, window=window, report=report):
                profile = self.mapper.profile_of(job)
                if profile.pool_gb > self.pool_capacity_gb:
                    unplaceable += 1
                    continue
                if origin is None:
                    origin = job.submit_unix or 0.0
                offset = max((job.submit_unix or 0.0) - origin, 0.0)
                profiles.append(profile)
                arrivals.append(offset)
                last_submit = max(last_submit, offset)
        if not profiles:
            raise SchedulingError(
                "trace replay produced no replayable jobs "
                f"(ingest report: {report.summary()})"
            )
        cluster = Cluster.build(
            n_racks=self.n_racks,
            nodes_per_rack=self.nodes_per_rack,
            local_memory_gb=self.local_memory_gb,
            pool_capacity_gb=self.pool_capacity_gb,
        )
        simulator = ClusterSimulator(cluster, make_policy(self.policy), seed=self.seed)
        with trace_span("trace_replay.simulate", jobs=len(profiles)):
            outcome = simulator.run(profiles, arrivals=arrivals)
        return TraceReplayResult(
            outcome=outcome,
            ingest=report.summary(),
            jobs_replayed=len(profiles),
            unplaceable_jobs=unplaceable,
            peak_pool_demand_gb=max(p.pool_gb for p in profiles),
            trace_span_s=last_submit,
        )
