"""Case study 1: optimising BFS's data placement on pooled memory (Section 7.1).

The paper's multi-tier analysis of Ligra BFS at 75% remote capacity shows a
99% remote access ratio — far above the capacity-ratio reference — meaning the
hottest data sits in the memory pool.  Two source-level changes fix this:

1. **Reorder allocations** so the small-but-hot ``Parents`` array is allocated
   and initialised first; under first-touch it then lands in node-local
   memory.  (The paper reports the remote access ratio dropping from 99% to
   80% and a 6% speedup.)
2. **Free an initialisation-only temporary** that the original code leaks
   (freeing it costs ~3% on a local-only system, which is why it was left
   allocated); with a memory pool the freed local memory is reused by the
   dynamic frontier allocations.  (Remote accesses drop further to 50% and
   the total speedup reaches 13% at 75% pooling; at 50% pooling the optimised
   version almost eliminates remote accesses.)

The case study also re-evaluates the interference sensitivity of the optimised
version, showing it is markedly less sensitive (Figure 12, right panel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..profiler.level3 import Level3Profiler, SensitivityCurve
from ..sim.engine import ExecutionEngine
from ..sim.platform import Platform
from ..sim.results import RunResult
from ..workloads.base import WorkloadSpec
from ..workloads.bfs import BFSModel


#: Allocation order of the original Ligra code: the graph structures come
#: first, ``Parents`` is allocated just before the traversal.
BASELINE_ORDER = ("offsets", "init-temp", "adjacency", "parents", "frontier-heap")
#: Optimised order: the hottest object is allocated and initialised first.
OPTIMIZED_ORDER = ("parents", "offsets", "init-temp", "adjacency", "frontier-heap")


def baseline_spec(scale: float = 1.0) -> WorkloadSpec:
    """The unmodified BFS workload (original allocation order, leaked temp)."""
    return BFSModel().build(scale)


def reordered_spec(scale: float = 1.0) -> WorkloadSpec:
    """Optimisation 1: ``Parents`` allocated first (still leaking the temp)."""
    return baseline_spec(scale).with_allocation_order(OPTIMIZED_ORDER)


def optimized_spec(scale: float = 1.0) -> WorkloadSpec:
    """Optimisations 1 + 2: reorder allocations and free the init-only temp."""
    return reordered_spec(scale).with_init_only(("init-temp",))


@dataclass(frozen=True)
class PlacementVariantResult:
    """Measurements of one BFS variant on one pooled configuration."""

    variant: str
    config_label: str
    run: RunResult
    sensitivity: Optional[SensitivityCurve] = None

    @property
    def runtime(self) -> float:
        """End-to-end runtime, seconds."""
        return self.run.total_runtime

    @property
    def remote_access_ratio(self) -> float:
        """Fraction of traffic served by the memory pool."""
        return self.run.remote_access_ratio

    @property
    def remote_bytes(self) -> float:
        """Absolute remote traffic, bytes (Figure 12, middle panel)."""
        return self.run.total_remote_bytes

    @property
    def traversal_remote_ratio(self) -> float:
        """Remote access ratio of the traversal phase only (the paper's headline number)."""
        return self.run.phase("p2").remote_access_ratio


@dataclass(frozen=True)
class BFSCaseStudyResult:
    """All variants on all evaluated pool fractions (the data behind Figure 12)."""

    scale: float
    variants: tuple[PlacementVariantResult, ...]

    def variant(self, name: str, config_label: str) -> PlacementVariantResult:
        """Look up one variant/configuration cell."""
        for v in self.variants:
            if v.variant == name and v.config_label == config_label:
                return v
        raise KeyError(f"no result for variant {name!r} on {config_label!r}")

    def speedup(self, config_label: str, variant: str = "optimized") -> float:
        """Runtime improvement of a variant over the baseline on one configuration."""
        base = self.variant("baseline", config_label).runtime
        opt = self.variant(variant, config_label).runtime
        if opt <= 0:
            return 0.0
        return base / opt - 1.0

    def remote_access_reduction(self, config_label: str, variant: str = "optimized") -> float:
        """Absolute drop in remote access ratio versus the baseline."""
        base = self.variant("baseline", config_label).remote_access_ratio
        opt = self.variant(variant, config_label).remote_access_ratio
        return base - opt

    def summary_rows(self) -> list[dict]:
        """Row-per-variant summary used by the Figure-12 benchmark and reports."""
        rows = []
        for v in self.variants:
            rows.append(
                {
                    "variant": v.variant,
                    "config": v.config_label,
                    "runtime_s": v.runtime,
                    "remote_access_ratio": v.remote_access_ratio,
                    "traversal_remote_ratio": v.traversal_remote_ratio,
                    "remote_bytes": v.remote_bytes,
                    "max_interference_loss": (
                        v.sensitivity.max_performance_loss if v.sensitivity is not None else None
                    ),
                }
            )
        return rows


class BFSPlacementCaseStudy:
    """Runs the three BFS variants across pooled configurations."""

    VARIANTS = ("baseline", "reordered", "optimized")

    def __init__(self, scale: float = 1.0, seed: int = 0) -> None:
        self.scale = scale
        self.seed = seed

    def build_variant(self, name: str) -> WorkloadSpec:
        """Build the workload spec of one variant by name."""
        if name == "baseline":
            return baseline_spec(self.scale)
        if name == "reordered":
            return reordered_spec(self.scale)
        if name == "optimized":
            return optimized_spec(self.scale)
        raise KeyError(f"unknown BFS variant {name!r}; known: {self.VARIANTS}")

    def run(
        self,
        pool_fractions: Sequence[float] = (0.50, 0.75),
        variants: Sequence[str] = VARIANTS,
        with_sensitivity: bool = True,
        loi_levels: Sequence[float] = (0.0, 10.0, 20.0, 30.0, 40.0, 50.0),
    ) -> BFSCaseStudyResult:
        """Execute the case study.

        ``pool_fractions`` are the *remote* (pooled) shares of the footprint —
        the paper evaluates 50% and 75% pooled.
        """
        results = []
        for pooled in pool_fractions:
            local_fraction = 1.0 - float(pooled)
            for name in variants:
                spec = self.build_variant(name)
                platform = Platform.pooled(spec.footprint_bytes, local_fraction)
                engine = ExecutionEngine(platform, seed=self.seed)
                run = engine.run(spec)
                sensitivity = None
                if with_sensitivity:
                    sensitivity = Level3Profiler(seed=self.seed).sensitivity(
                        spec, platform, loi_levels
                    )
                results.append(
                    PlacementVariantResult(
                        variant=name,
                        config_label=f"{int(round(pooled * 100))}%-pooled",
                        run=run,
                        sensitivity=sensitivity,
                    )
                )
        return BFSCaseStudyResult(scale=self.scale, variants=tuple(results))
