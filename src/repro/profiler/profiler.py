"""The multi-level profiler facade.

The paper's profiler is an ``LD_PRELOAD`` library driven by environment
variables (``NMO_MODE=counters|sample|prefetch``, ``NMO_TRACK_RSS=1``) with a
small tracing API (``pf_start("tag")`` / ``pf_stop()``) to attribute results
to specific kernels (Figure 4 shows the full workflow).  This module provides
the equivalent front end for the simulator:

* :class:`MultiLevelProfiler` exposes ``level1`` / ``level2`` / ``level3``
  methods that mirror steps II, IV and V of the workflow, and
* :class:`RegionTracer` provides the ``pf_start`` / ``pf_stop`` tracing API
  for attributing user-defined regions (used by the examples to tag kernels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..cache.events import CounterSet
from ..config.errors import ProfilerError
from ..sim.platform import Platform
from ..workloads.base import WorkloadSpec
from .level1 import Level1Profile, Level1Profiler
from .level2 import Level2Profile, Level2Profiler
from .level3 import InterferenceReport, Level3Profiler, SensitivityCurve


@dataclass
class TracedRegion:
    """A user-tagged region recorded through the ``pf_start``/``pf_stop`` API."""

    tag: str
    start_time: float
    stop_time: Optional[float] = None
    counters: CounterSet = field(default_factory=CounterSet)

    @property
    def elapsed(self) -> float:
        """Region duration (0 while still open)."""
        if self.stop_time is None:
            return 0.0
        return self.stop_time - self.start_time

    @property
    def closed(self) -> bool:
        """Whether pf_stop has been called for this region."""
        return self.stop_time is not None


class RegionTracer:
    """Simple tracing support: attribute measurements to named regions.

    Mirrors the paper's ``pf_start("tag")`` / ``pf_stop()`` API.  Regions may
    not overlap (the paper's profiler has the same restriction); re-using a
    tag accumulates into the same logical region name with an occurrence
    suffix.
    """

    def __init__(self) -> None:
        self._regions: list[TracedRegion] = []
        self._open: Optional[TracedRegion] = None
        self._clock = 0.0

    def advance_clock(self, seconds: float) -> None:
        """Advance the tracer's notion of time (simulated seconds)."""
        if seconds < 0:
            raise ProfilerError("cannot advance the clock backwards")
        self._clock += seconds

    def pf_start(self, tag: str) -> TracedRegion:
        """Open a region named ``tag`` at the current time."""
        if self._open is not None:
            raise ProfilerError(
                f"pf_start({tag!r}) while region {self._open.tag!r} is still open"
            )
        region = TracedRegion(tag=tag, start_time=self._clock)
        self._open = region
        return region

    def pf_stop(self, counters: Optional[CounterSet] = None) -> TracedRegion:
        """Close the currently open region, optionally attaching counters."""
        if self._open is None:
            raise ProfilerError("pf_stop() without a matching pf_start()")
        region = self._open
        region.stop_time = self._clock
        if counters is not None:
            region.counters = region.counters.merged(counters)
        self._regions.append(region)
        self._open = None
        return region

    @property
    def regions(self) -> tuple[TracedRegion, ...]:
        """All closed regions in order."""
        return tuple(self._regions)

    def region(self, tag: str) -> TracedRegion:
        """The first closed region with the given tag."""
        for region in self._regions:
            if region.tag == tag:
                return region
        raise KeyError(f"no traced region {tag!r}")

    def total_time(self, tag: str) -> float:
        """Total elapsed time across all occurrences of ``tag``."""
        return sum(r.elapsed for r in self._regions if r.tag == tag)


class MultiLevelProfiler:
    """Facade bundling the three profiling levels of the methodology.

    Typical usage mirrors the paper's workflow (Figure 4)::

        profiler = MultiLevelProfiler(seed=0)
        level1 = profiler.level1(spec)                       # step II
        level2 = profiler.level2(spec, local_fraction=0.5)   # steps III-IV
        level3 = profiler.level3(spec, local_fraction=0.5)   # step V
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.tracer = RegionTracer()

    # -- level 1 -------------------------------------------------------------------

    def level1(self, spec: WorkloadSpec, platform: Optional[Platform] = None) -> Level1Profile:
        """General characteristics on a (by default) local-only system."""
        return Level1Profiler(platform=platform, seed=self.seed).profile(spec)

    # -- level 2 -------------------------------------------------------------------

    def level2(
        self,
        spec: WorkloadSpec,
        local_fraction: float = 0.5,
        platform: Optional[Platform] = None,
    ) -> Level2Profile:
        """Multi-tier access ratios on a pooled system.

        ``local_fraction`` mirrors the paper's ``setup_waste`` step: the share
        of the workload's footprint that fits in node-local memory.
        """
        if platform is None:
            platform = Platform.pooled(spec.footprint_bytes, local_fraction)
        return Level2Profiler(seed=self.seed).profile(spec, platform)

    def level2_sweep(
        self, spec: WorkloadSpec, local_fractions: Sequence[float] = (0.75, 0.50, 0.25)
    ) -> dict[str, Level2Profile]:
        """Level-2 profiles across the paper's three capacity-ratio setups."""
        return Level2Profiler(seed=self.seed).profile_capacity_ratios(spec, local_fractions)

    # -- level 3 -------------------------------------------------------------------

    def level3(
        self,
        spec: WorkloadSpec,
        local_fraction: float = 0.5,
        loi_levels: Sequence[float] = Level3Profiler.DEFAULT_LOI_LEVELS,
        platform: Optional[Platform] = None,
    ) -> InterferenceReport:
        """Interference sensitivity and interference coefficient on a pooled system."""
        if platform is None:
            platform = Platform.pooled(spec.footprint_bytes, local_fraction)
        profiler = Level3Profiler(seed=self.seed)
        report = profiler.interference_coefficient(spec, platform)
        if tuple(loi_levels) != Level3Profiler.DEFAULT_LOI_LEVELS:
            sensitivity = profiler.sensitivity(spec, platform, loi_levels)
            report = InterferenceReport(
                workload=report.workload,
                config_label=report.config_label,
                sensitivity=sensitivity,
                interference_coefficient=report.interference_coefficient,
                phase_interference_coefficients=report.phase_interference_coefficients,
                remote_bandwidth_demand=report.remote_bandwidth_demand,
                link_traffic_bytes=report.link_traffic_bytes,
            )
        return report

    def level3_sensitivity(
        self,
        spec: WorkloadSpec,
        local_fractions: Sequence[float] = (0.75, 0.50, 0.25),
        loi_levels: Sequence[float] = Level3Profiler.DEFAULT_LOI_LEVELS,
    ) -> dict[str, SensitivityCurve]:
        """Sensitivity curves across the paper's three capacity-ratio setups."""
        return Level3Profiler(seed=self.seed).sensitivity_across_configs(
            spec, local_fractions, loi_levels
        )

    # -- tracing API ---------------------------------------------------------------

    def pf_start(self, tag: str) -> TracedRegion:
        """Open a traced region (paper API)."""
        return self.tracer.pf_start(tag)

    def pf_stop(self, counters: Optional[CounterSet] = None) -> TracedRegion:
        """Close the current traced region (paper API)."""
        return self.tracer.pf_stop(counters)
