"""Level 2 profiling: multi-tier memory access.

The second level of the paper's methodology quantifies how an application's
memory traffic distributes over the tiers of a multi-tier memory system and
compares the measured access ratio against two reference points
(Section 5.1):

* R_cap — the tier's share of total memory capacity (the lower bound a
  balanced placement should at least reach), and
* R_BW — the tier's share of aggregate memory bandwidth (the upper bound
  beyond which the slow tier becomes the memory bottleneck).

The profiler reports, per phase, the remote capacity ratio (from the
numa_maps-equivalent placement state) and the remote access ratio (from the
LOCAL_DRAM / REMOTE_DRAM offcore counters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..cache import events
from ..config.errors import ProfilerError
from ..sim.engine import ExecutionEngine
from ..sim.platform import Platform
from ..sim.results import RunResult
from ..workloads.base import WorkloadSpec


@dataclass(frozen=True)
class TierAccessReport:
    """Level-2 metrics for one phase on one tier configuration."""

    workload: str
    phase: str
    config_label: str
    remote_access_ratio: float
    remote_capacity_ratio: float
    remote_bandwidth_ratio: float
    local_bytes: float
    remote_bytes: float
    arithmetic_intensity: float

    @property
    def label(self) -> str:
        """The paper's ``App-pN`` label."""
        return f"{self.workload}-{self.phase}"

    @property
    def above_bandwidth_reference(self) -> bool:
        """True when remote accesses exceed R_BW — the slow tier is the bottleneck."""
        return self.remote_access_ratio > self.remote_bandwidth_ratio

    @property
    def below_capacity_reference(self) -> bool:
        """True when remote accesses are below R_cap — capacity headroom is unused."""
        return self.remote_access_ratio < self.remote_capacity_ratio

    @property
    def optimization_headroom(self) -> float:
        """Distance from the nearest reference band (0 when inside [R_cap-ish, R_BW]).

        The paper's guidance: access ratios should sit between the capacity
        ratio (lower bound) and the bandwidth ratio (upper bound); the
        distance outside that band measures how much data-placement tuning
        could still help (or how ill-balanced the tier design is).
        """
        low = min(self.remote_capacity_ratio, self.remote_bandwidth_ratio)
        high = max(self.remote_capacity_ratio, self.remote_bandwidth_ratio)
        if self.remote_access_ratio < low:
            return low - self.remote_access_ratio
        if self.remote_access_ratio > high:
            return self.remote_access_ratio - high
        return 0.0


@dataclass(frozen=True)
class Level2Profile:
    """Level-2 profile of one workload on one tiered configuration."""

    workload: str
    input_label: str
    config_label: str
    remote_capacity_ratio: float
    remote_bandwidth_ratio: float
    phases: tuple[TierAccessReport, ...]
    run: RunResult

    @property
    def overall_remote_access_ratio(self) -> float:
        """Traffic-weighted remote access ratio over the whole run."""
        return self.run.remote_access_ratio

    def phase_report(self, phase: str) -> TierAccessReport:
        """Look up the report of one phase."""
        for report in self.phases:
            if report.phase == phase:
                return report
        raise KeyError(f"no phase {phase!r} in this profile")


class Level2Profiler:
    """Runs a workload on pooled tier configurations and extracts Level-2 metrics."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def profile(
        self, spec: WorkloadSpec, platform: Platform
    ) -> Level2Profile:
        """Level-2 profile of ``spec`` on an explicit (pooled) platform."""
        if platform.tier_config is None:
            raise ProfilerError(
                "Level-2 profiling requires a platform with an explicit tier configuration"
            )
        engine = ExecutionEngine(platform, seed=self.seed)
        run = engine.run(spec)
        r_bw = platform.tier_config.remote_bandwidth_ratio
        phases = tuple(
            TierAccessReport(
                workload=spec.name,
                phase=p.name,
                config_label=platform.label,
                remote_access_ratio=p.remote_access_ratio,
                remote_capacity_ratio=run.remote_capacity_ratio,
                remote_bandwidth_ratio=r_bw,
                local_bytes=p.local_bytes,
                remote_bytes=p.remote_bytes,
                arithmetic_intensity=p.arithmetic_intensity,
            )
            for p in run.phases
        )
        return Level2Profile(
            workload=spec.name,
            input_label=spec.input_label,
            config_label=platform.label,
            remote_capacity_ratio=platform.tier_config.remote_capacity_ratio,
            remote_bandwidth_ratio=r_bw,
            phases=phases,
            run=run,
        )

    def profile_capacity_ratios(
        self,
        spec: WorkloadSpec,
        local_fractions: Sequence[float] = (0.75, 0.50, 0.25),
    ) -> dict[str, Level2Profile]:
        """Level-2 profiles over the paper's three capacity-ratio configurations."""
        profiles = {}
        for fraction in local_fractions:
            platform = Platform.pooled(spec.footprint_bytes, fraction)
            profiles[platform.label] = self.profile(spec, platform)
        return profiles
