"""Level 3 profiling: memory interference on pool-based disaggregated memory.

The third level of the paper's methodology quantifies two complementary
aspects of memory interference (Section 6):

* **Sensitivity** — how much an application slows down when other nodes
  sharing the memory pool inject traffic.  Measured by running the
  application against LBench-generated interference at increasing Levels of
  Interference (LoI = 0, 10, ... 50) and normalising to the LoI = 0 runtime
  (Figure 10).
* **Interference coefficient (IC)** — how much interference the application
  itself causes, measured as the relative slowdown of a 1-thread 1-flop
  LBench probe co-running with the application (Figure 11, right).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..cache import events
from ..config.errors import ProfilerError
from ..sim.engine import ExecutionEngine
from ..sim.interference import ConstantInterference
from ..sim.platform import Platform
from ..sim.results import RunResult
from ..workloads.base import WorkloadSpec
from ..workloads.lbench import LBench


@dataclass(frozen=True)
class SensitivityCurve:
    """Relative performance of one workload versus the injected LoI."""

    workload: str
    config_label: str
    loi_levels: tuple[float, ...]
    runtimes: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.loi_levels) != len(self.runtimes):
            raise ProfilerError("LoI levels and runtimes must have equal length")
        if not self.loi_levels or self.loi_levels[0] != 0.0:
            raise ProfilerError("the first LoI level must be 0 (the baseline)")

    @property
    def baseline_runtime(self) -> float:
        """Runtime at LoI = 0."""
        return self.runtimes[0]

    @property
    def relative_performance(self) -> tuple[float, ...]:
        """Runtime(LoI=0) / runtime(LoI) for every level — the paper's y-axis."""
        base = self.baseline_runtime
        return tuple(base / r if r > 0 else 0.0 for r in self.runtimes)

    def slowdown_at(self, loi: float) -> float:
        """Interpolated relative slowdown (>= 1) at an arbitrary LoI."""
        lois = np.asarray(self.loi_levels, dtype=np.float64)
        runtimes = np.asarray(self.runtimes, dtype=np.float64)
        runtime = float(np.interp(loi, lois, runtimes))
        return runtime / self.baseline_runtime if self.baseline_runtime > 0 else 1.0

    @property
    def max_performance_loss(self) -> float:
        """Performance loss at the highest measured LoI (1 - relative performance)."""
        return 1.0 - self.relative_performance[-1]


@dataclass(frozen=True)
class InterferenceReport:
    """Level-3 metrics of one workload on one pooled configuration."""

    workload: str
    config_label: str
    sensitivity: SensitivityCurve
    interference_coefficient: float
    phase_interference_coefficients: tuple[tuple[str, float], ...]
    remote_bandwidth_demand: float
    link_traffic_bytes: float

    @property
    def induced_loi(self) -> float:
        """Average LoI this application's own traffic generates on the link."""
        # The IC and the LoI are two views of the same injected traffic.
        return self.sensitivity.loi_levels[0] if not self.remote_bandwidth_demand else 0.0


class Level3Profiler:
    """Measures interference sensitivity and interference coefficients."""

    #: The LoI sweep used by the paper (Figure 10).
    DEFAULT_LOI_LEVELS: tuple[float, ...] = (0.0, 10.0, 20.0, 30.0, 40.0, 50.0)

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    # -- sensitivity ------------------------------------------------------------------

    def sensitivity(
        self,
        spec: WorkloadSpec,
        platform: Platform,
        loi_levels: Sequence[float] = DEFAULT_LOI_LEVELS,
    ) -> SensitivityCurve:
        """Runtime of ``spec`` under each injected LoI on ``platform``."""
        if platform.tier_config is None:
            raise ProfilerError("Level-3 profiling requires a pooled platform")
        levels = tuple(float(l) for l in loi_levels)
        if not levels or levels[0] != 0.0:
            levels = (0.0,) + tuple(l for l in levels if l != 0.0)
        engine = ExecutionEngine(platform, seed=self.seed)
        runtimes = []
        for loi in levels:
            interference = ConstantInterference(loi) if loi > 0 else None
            run = engine.run(spec, interference=interference)
            runtimes.append(run.total_runtime)
        return SensitivityCurve(
            workload=spec.name,
            config_label=platform.label,
            loi_levels=levels,
            runtimes=tuple(runtimes),
        )

    def sensitivity_across_configs(
        self,
        spec: WorkloadSpec,
        local_fractions: Sequence[float] = (0.75, 0.50, 0.25),
        loi_levels: Sequence[float] = DEFAULT_LOI_LEVELS,
    ) -> dict[str, SensitivityCurve]:
        """Sensitivity curves on the paper's three capacity-ratio configurations."""
        curves = {}
        for fraction in local_fractions:
            platform = Platform.pooled(spec.footprint_bytes, fraction)
            curves[platform.label] = self.sensitivity(spec, platform, loi_levels)
        return curves

    # -- interference coefficient -------------------------------------------------------

    def interference_coefficient(
        self, spec: WorkloadSpec, platform: Platform, lbench: Optional[LBench] = None
    ) -> InterferenceReport:
        """IC of ``spec``: slowdown of the LBench probe co-running with it."""
        if platform.tier_config is None:
            raise ProfilerError("Level-3 profiling requires a pooled platform")
        engine = ExecutionEngine(platform, seed=self.seed)
        run = engine.run(spec)
        probe = lbench if lbench is not None else LBench(platform.testbed, platform.link)

        phase_ics = []
        total_time = max(run.total_runtime, 1e-12)
        weighted_ic = 0.0
        for phase in run.phases:
            ic = probe.interference_coefficient(phase.remote_bandwidth_demand)
            phase_ics.append((phase.name, ic))
            weighted_ic += ic * phase.runtime / total_time

        sensitivity = self.sensitivity(spec, platform)
        return InterferenceReport(
            workload=spec.name,
            config_label=platform.label,
            sensitivity=sensitivity,
            interference_coefficient=weighted_ic,
            phase_interference_coefficients=tuple(phase_ics),
            remote_bandwidth_demand=run.total_remote_bytes / total_time,
            link_traffic_bytes=run.counters[events.UPI_TRAFFIC_BYTES],
        )

    def interference_coefficients(
        self,
        specs: Sequence[WorkloadSpec],
        local_fraction: float = 0.50,
    ) -> dict[str, InterferenceReport]:
        """IC of several workloads on the paper's 50% memory pooling setup."""
        reports = {}
        for spec in specs:
            platform = Platform.pooled(spec.footprint_bytes, local_fraction)
            reports[spec.name] = self.interference_coefficient(spec, platform)
        return reports
