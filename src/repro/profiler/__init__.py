"""The three-level memory-centric profiler."""

from .level1 import Level1Profile, Level1Profiler, PhaseCharacteristics, PrefetchReport
from .level2 import Level2Profile, Level2Profiler, TierAccessReport
from .level3 import InterferenceReport, Level3Profiler, SensitivityCurve
from .profiler import MultiLevelProfiler, RegionTracer, TracedRegion

__all__ = [
    "Level1Profile",
    "Level1Profiler",
    "PhaseCharacteristics",
    "PrefetchReport",
    "Level2Profile",
    "Level2Profiler",
    "TierAccessReport",
    "InterferenceReport",
    "Level3Profiler",
    "SensitivityCurve",
    "MultiLevelProfiler",
    "RegionTracer",
    "TracedRegion",
]
