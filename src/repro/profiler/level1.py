"""Level 1 profiling: general (system-independent) application characteristics.

The first level of the paper's methodology captures an application's intrinsic
requirements on the memory subsystem — properties that are preserved across
memory-system configurations (Section 3.1, "Level 1"):

* arithmetic intensity and achieved throughput (roofline placement, Figure 5),
* memory capacity usage (peak RSS, from numa_maps sampling),
* memory bandwidth usage,
* the access-pattern distribution over the footprint (the bandwidth-capacity
  scaling curve of Figure 6), and
* hardware-prefetching suitability: accuracy, coverage, excessive traffic and
  performance gain (Figures 7 and 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..cache import events
from ..cache.hierarchy import CacheHierarchyModel
from ..sim.engine import ExecutionEngine
from ..sim.platform import Platform
from ..sim.results import RunResult
from ..trace.footprint import ScalingCurve, scaling_curve_from_profile
from ..workloads.base import WorkloadSpec


@dataclass(frozen=True)
class PhaseCharacteristics:
    """Level-1 metrics of one phase."""

    phase: str
    arithmetic_intensity: float
    achieved_gflops: float
    achieved_bandwidth_gbs: float
    dram_bytes: float
    runtime: float


@dataclass(frozen=True)
class PrefetchReport:
    """Prefetching suitability of one application (Figure 8).

    ``performance_gain`` is the relative slowdown of running with hardware
    prefetching disabled: (runtime_without / runtime_with) - 1.
    """

    workload: str
    accuracy: float
    coverage: float
    excess_traffic: float
    performance_gain: float
    traffic_with_prefetch: float
    traffic_without_prefetch: float


@dataclass(frozen=True)
class Level1Profile:
    """Full Level-1 profile of one workload on a local-only system."""

    workload: str
    input_label: str
    footprint_bytes: int
    phases: tuple[PhaseCharacteristics, ...]
    scaling_curve: ScalingCurve
    prefetch: PrefetchReport
    total_runtime: float

    @property
    def peak_rss_gib(self) -> float:
        """Peak resident set size in GiB."""
        return self.footprint_bytes / 2**30

    def phase_points(self) -> list[tuple[str, float, float]]:
        """(label, arithmetic intensity, Gflop/s) points for the roofline plot."""
        return [
            (f"{self.workload}-{p.phase}", p.arithmetic_intensity, p.achieved_gflops)
            for p in self.phases
        ]


class Level1Profiler:
    """Runs a workload on a local-only platform and extracts Level-1 metrics."""

    def __init__(self, platform: Optional[Platform] = None, seed: int = 0) -> None:
        self.platform = platform if platform is not None else Platform.local_only()
        self.seed = seed

    def profile(self, spec: WorkloadSpec) -> Level1Profile:
        """Produce the complete Level-1 profile of one workload."""
        engine = ExecutionEngine(self.platform, seed=self.seed)
        with_pf = engine.run(spec, prefetch_enabled=True)
        without_pf = engine.run(spec, prefetch_enabled=False)
        profile = engine.access_profile(spec)
        curve = scaling_curve_from_profile(profile)

        phases = tuple(
            PhaseCharacteristics(
                phase=p.name,
                arithmetic_intensity=p.arithmetic_intensity,
                achieved_gflops=p.achieved_flops / 1e9,
                achieved_bandwidth_gbs=p.achieved_bandwidth / 1e9,
                dram_bytes=p.dram_bytes,
                runtime=p.runtime,
            )
            for p in with_pf.phases
        )
        prefetch = self.prefetch_report(spec, with_pf, without_pf)
        return Level1Profile(
            workload=spec.name,
            input_label=spec.input_label,
            footprint_bytes=spec.footprint_bytes,
            phases=phases,
            scaling_curve=curve,
            prefetch=prefetch,
            total_runtime=with_pf.total_runtime,
        )

    def prefetch_report(
        self, spec: WorkloadSpec, with_pf: RunResult, without_pf: RunResult
    ) -> PrefetchReport:
        """Prefetch accuracy/coverage/excess-traffic/gain from two runs (Eq. 1-2)."""
        counters = with_pf.counters
        accuracy = CacheHierarchyModel.accuracy_from_counters(counters)
        coverage = CacheHierarchyModel.coverage_from_counters(counters)
        traffic_with = counters[events.L2_LINES_IN]
        traffic_without = without_pf.counters[events.L2_LINES_IN]
        excess = (traffic_with - traffic_without) / traffic_without if traffic_without > 0 else 0.0
        gain = (
            without_pf.total_runtime / with_pf.total_runtime - 1.0
            if with_pf.total_runtime > 0
            else 0.0
        )
        return PrefetchReport(
            workload=spec.name,
            accuracy=accuracy,
            coverage=coverage,
            excess_traffic=max(excess, 0.0),
            performance_gain=gain,
            traffic_with_prefetch=traffic_with,
            traffic_without_prefetch=traffic_without,
        )

    def scaling_curves(
        self, specs: Sequence[WorkloadSpec]
    ) -> dict[str, ScalingCurve]:
        """Bandwidth-capacity scaling curves for several inputs of one application.

        Returns a mapping from input label to curve — the ingredient of one
        panel of Figure 6.
        """
        engine = ExecutionEngine(self.platform, seed=self.seed)
        curves = {}
        for spec in specs:
            profile = engine.access_profile(spec)
            curves[spec.input_label] = scaling_curve_from_profile(profile)
        return curves

    def prefetch_timeline(
        self, spec: WorkloadSpec, steps_per_phase: int = 40
    ) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """L2 line-fill timelines with and without prefetching (Figure 7)."""
        engine = ExecutionEngine(self.platform, seed=self.seed)
        timelines = {}
        for label, enabled in (("with-prefetch", True), ("without-prefetch", False)):
            result = engine.run(spec, prefetch_enabled=enabled)
            timelines[label] = engine.l2_timeline(spec, result, steps_per_phase)
        return timelines
