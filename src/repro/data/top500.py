"""Memory configurations of leadership supercomputers (Figure 1 and Table 1).

The figures are taken from the paper's Table 1 (Top-10 systems of the
November 2022 Top500 list) and, for Figure 1, from the public specifications
of the No. 1 systems of the past 15 years.  Costs are *estimates* derived from
the paper's assumption that HBM carries a 3-5x unit-price premium over DDR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..models.cost import MemoryPriceModel


@dataclass(frozen=True)
class SystemMemoryConfig:
    """Memory configuration of one supercomputer (one row of Table 1)."""

    name: str
    rank: int
    ddr_gb_per_node: Optional[float]
    hbm_gb_per_node: Optional[float]
    hbm_bandwidth_tbs_per_node: Optional[float]
    nodes: int
    year: int

    @property
    def total_memory_gb_per_node(self) -> float:
        """DDR + HBM capacity per node, GB."""
        return (self.ddr_gb_per_node or 0.0) + (self.hbm_gb_per_node or 0.0)

    @property
    def has_hbm(self) -> bool:
        """Whether the system has an HBM tier."""
        return bool(self.hbm_gb_per_node)

    @property
    def has_multi_tier_memory(self) -> bool:
        """Whether the node memory system has more than one tier."""
        return bool(self.ddr_gb_per_node) and bool(self.hbm_gb_per_node)

    def estimated_ddr_cost(self, prices: MemoryPriceModel = MemoryPriceModel()) -> float:
        """Estimated system-wide DDR cost, dollars (0 when the system has no DDR)."""
        if not self.ddr_gb_per_node:
            return 0.0
        return prices.ddr_cost(self.ddr_gb_per_node, self.nodes)

    def estimated_hbm_cost(self, prices: MemoryPriceModel = MemoryPriceModel()) -> float:
        """Estimated system-wide HBM cost (mid-range), dollars."""
        if not self.hbm_gb_per_node:
            return 0.0
        return prices.hbm_cost_mid(self.hbm_gb_per_node, self.nodes)


#: Table 1: the Top-10 systems of the November 2022 list.
TOP10_NOV2022: tuple[SystemMemoryConfig, ...] = (
    SystemMemoryConfig("Frontier", 1, 512, 512, 12.8, 9408, 2021),
    SystemMemoryConfig("Fugaku", 2, None, 32, 1.0, 158976, 2020),
    SystemMemoryConfig("LUMI-G", 3, 512, 512, 12.8, 2560, 2022),
    SystemMemoryConfig("Leonardo", 4, 512, 256, 8.2, 3456, 2022),
    SystemMemoryConfig("Summit", 5, 512, 96, 5.4, 4608, 2018),
    SystemMemoryConfig("Sierra", 6, 256, 64, 3.6, 4284, 2018),
    SystemMemoryConfig("Sunway TaihuLight", 7, 32, None, None, 40960, 2016),
    SystemMemoryConfig("Perlmutter (GPU)", 8, 256, 160, 6.2, 1536, 2021),
    SystemMemoryConfig("Selene", 9, 1024, 640, 16.0, 280, 2020),
    SystemMemoryConfig("Tianhe-2A", 10, 192, None, None, 16000, 2018),
)


@dataclass(frozen=True)
class MemoryEvolutionPoint:
    """One point of Figure 1: the No. 1 system of a given year."""

    year: int
    system: str
    memory_gb_per_node: float
    memory_bandwidth_gbs_per_node: float
    cores_per_node: int

    @property
    def bandwidth_per_core_gbs(self) -> float:
        """Memory bandwidth per core — the quantity behind the bandwidth wall."""
        if self.cores_per_node <= 0:
            return 0.0
        return self.memory_bandwidth_gbs_per_node / self.cores_per_node

    @property
    def capacity_per_core_gb(self) -> float:
        """Memory capacity per core."""
        if self.cores_per_node <= 0:
            return 0.0
        return self.memory_gb_per_node / self.cores_per_node


#: Figure 1: evolution of per-node memory capacity/bandwidth of No. 1 systems.
MEMORY_EVOLUTION: tuple[MemoryEvolutionPoint, ...] = (
    MemoryEvolutionPoint(2008, "Roadrunner", 16, 21, 13),
    MemoryEvolutionPoint(2010, "Jaguar", 16, 25, 12),
    MemoryEvolutionPoint(2011, "K computer", 16, 64, 8),
    MemoryEvolutionPoint(2012, "Titan", 38, 52, 16),
    MemoryEvolutionPoint(2013, "Tianhe-2", 64, 102, 24),
    MemoryEvolutionPoint(2016, "Sunway TaihuLight", 32, 136, 260),
    MemoryEvolutionPoint(2018, "Summit", 608, 1035, 44),
    MemoryEvolutionPoint(2020, "Fugaku", 32, 1024, 48),
    MemoryEvolutionPoint(2021, "Frontier", 1024, 12800 / 1.0, 64),
    MemoryEvolutionPoint(2022, "Frontier", 1024, 12800 / 1.0, 64),
)


def top10_systems() -> tuple[SystemMemoryConfig, ...]:
    """The Top-10 systems of Table 1."""
    return TOP10_NOV2022


def system(name: str) -> SystemMemoryConfig:
    """Look up one Top-10 system by name (case-insensitive prefix match)."""
    lowered = name.lower()
    for config in TOP10_NOV2022:
        if config.name.lower().startswith(lowered):
            return config
    raise KeyError(f"no Top-10 system matching {name!r}")


def memory_evolution() -> tuple[MemoryEvolutionPoint, ...]:
    """The Figure-1 evolution series."""
    return MEMORY_EVOLUTION


def multi_tier_share() -> float:
    """Fraction of the Top-10 systems with a DDR+HBM multi-tier memory system.

    The paper notes that 8 out of the Top-10 use HBM-DDR multi-tier memory
    (counting HBM-only Fugaku as tiered with respect to its HBM stacks).
    """
    tiered = sum(1 for s in TOP10_NOV2022 if s.has_hbm)
    return tiered / len(TOP10_NOV2022)
