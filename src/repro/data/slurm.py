"""Streaming ingestion of Slurm ``sacct`` accounting dumps (ROADMAP item 3).

Every workload in the repository used to be synthetic
(:mod:`repro.workloads` analytic models).  This module replays *real*
production traces instead: a pipe-separated ``sacct -P`` dump — the format
every Slurm site can export with one command::

    sacct -a -P -S 2024-01-01 -E 2024-07-01 \\
        -o JobIDRaw,State,NNodes,ElapsedRaw,MaxRSS,AveRSS,Submit,Start,End > trace.psv

becomes a stream of :class:`TraceJob` records that
:class:`~repro.casestudies.trace_replay.TraceReplayStudy` maps onto
:class:`~repro.scheduler.job.JobProfile` submissions.  ``MaxRSS``/``AveRSS``
give exactly the per-job memory footprints pool-aware placement needs, so a
multi-month machine trace answers "what if this machine's real workload ran
on a CXL-pooled rack?".

Design constraints (the tentpole contract):

* **Streaming.**  A multi-month trace holds millions of subjob rows;
  :class:`SacctReader` is a generator that buffers only the rows of the
  *current* job (an allocation plus its steps — a handful of lines), never
  the trace.  Peak memory is O(steps of one job), verified by test.
* **Step folding.**  ``sacct`` emits one row per job *step*
  (``123.batch``, ``123.extern``, ``123.0`` …) below each allocation row
  (``123``).  Steps are folded into their parent: folded ``NNodes``,
  ``MaxRSS``, ``AveRSS`` and elapsed are the **maximum** over the allocation
  and all steps (a fold is never below any constituent), timestamps are the
  envelope (earliest submit/start, latest end).  Rows of one job are assumed
  contiguous, which ``sacct`` guarantees; a re-appearing job id starts a new
  group.
* **Skip, don't crash.**  Malformed rows (bad column count, unparsable
  sizes/times) and jobs that cannot be replayed (``CANCELLED`` before
  starting, still ``RUNNING``, zero elapsed) are counted per reason in an
  :class:`IngestReport` — every consumed row is accounted as folded into a
  yielded job or skipped with a reason, an invariant the property suite
  pins.  Only *structural* problems (missing header columns) raise
  :class:`~repro.config.errors.TraceError`.

Units: RSS fields use Slurm's KiB-based suffixes and are parsed to **bytes**
by :func:`repro.config.units.parse_size`; downstream ``JobProfile.pool_gb``
is **decimal GB** (see ``docs/data.md`` for the conversion contract).
Telemetry counters ``data.slurm.rows_read`` / ``rows_skipped`` /
``steps_folded`` / ``jobs_yielded`` track ingestion when telemetry is on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta, timezone
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from ..config.errors import ConfigurationError, TraceError
from ..config.units import KiB, parse_size
from ..telemetry import metrics

__all__ = [
    "REQUIRED_FIELDS",
    "IngestReport",
    "SacctReader",
    "SkippedRow",
    "TraceJob",
    "parse_elapsed",
    "parse_timestamp",
    "read_sacct",
    "synthesize_sacct_lines",
    "write_synthetic_trace",
]

#: Header columns the reader must find (``JobID`` is accepted for
#: ``JobIDRaw``; ``Elapsed`` for ``ElapsedRaw``).  Extra columns are ignored,
#: so site-specific exports with more fields ingest unchanged.
REQUIRED_FIELDS = ("JobIDRaw", "State", "NNodes", "ElapsedRaw", "MaxRSS", "Submit")

_FIELD_FALLBACKS = {"JobIDRaw": "JobID", "ElapsedRaw": "Elapsed"}

#: Timestamp values sacct uses for "not applicable / not yet".
_NULL_TIMES = ("", "Unknown", "None", "N/A")


def parse_elapsed(text: str) -> float:
    """Parse a Slurm elapsed time to seconds.

    Accepts ``[D-]HH:MM:SS[.fff]``, ``MM:SS[.fff]`` and bare (possibly
    fractional) seconds — the ``ElapsedRaw`` form.  Raises
    :class:`~repro.config.errors.ConfigurationError` with the offending text
    on anything else.

    >>> parse_elapsed("1-02:03:04")
    93784.0
    >>> parse_elapsed("05:30")
    330.0
    >>> parse_elapsed("42")
    42.0
    """
    cleaned = text.strip() if isinstance(text, str) else ""
    if not cleaned:
        raise ConfigurationError("empty elapsed string (expected D-HH:MM:SS or seconds)")
    days = 0.0
    clock = cleaned
    if "-" in cleaned:
        day_text, _, clock = cleaned.partition("-")
        try:
            days = float(day_text)
        except ValueError:
            raise ConfigurationError(
                f"malformed elapsed {text!r}: day count {day_text!r} is not a number"
            ) from None
        if days < 0:
            raise ConfigurationError(f"elapsed {text!r} is negative")
    parts = clock.split(":")
    if len(parts) > 3:
        raise ConfigurationError(
            f"malformed elapsed {text!r}: expected at most HH:MM:SS"
        )
    try:
        numbers = [float(p) for p in parts]
    except ValueError:
        raise ConfigurationError(
            f"malformed elapsed {text!r}: expected D-HH:MM:SS, MM:SS or seconds"
        ) from None
    if any(n < 0 for n in numbers):
        raise ConfigurationError(f"elapsed {text!r} is negative")
    seconds = 0.0
    for number in numbers:
        seconds = seconds * 60.0 + number
    return days * 86400.0 + seconds


def parse_timestamp(text: str) -> Optional[float]:
    """Parse a sacct timestamp (``2024-03-01T00:05:00``) to unix seconds.

    Returns ``None`` for sacct's null markers (``Unknown``, ``None``, empty)
    — a job that never started has ``Start=Unknown``.  Timestamps are taken
    as UTC (sacct emits site-local naive times; replay only uses
    *differences*, so the zone choice cancels out).
    """
    cleaned = text.strip() if isinstance(text, str) else ""
    if cleaned in _NULL_TIMES:
        return None
    try:
        stamp = datetime.fromisoformat(cleaned)
    except ValueError:
        raise ConfigurationError(
            f"malformed timestamp {text!r}: expected ISO like 2024-03-01T00:05:00"
        ) from None
    if stamp.tzinfo is None:
        stamp = stamp.replace(tzinfo=timezone.utc)
    return stamp.timestamp()


@dataclass(frozen=True)
class TraceJob:
    """One replayable job: an allocation with all its steps folded in.

    ``max_rss_bytes`` / ``ave_rss_bytes`` are per-task RSS in **bytes**
    (already through :func:`~repro.config.units.parse_size`), the maximum
    over the allocation and every step; multiply by ``nnodes`` for the job's
    aggregate footprint.  ``steps_folded`` counts the step rows absorbed —
    the allocation row itself is not a step.
    """

    job_id: str
    state: str
    nnodes: int
    elapsed_s: float
    max_rss_bytes: int
    ave_rss_bytes: int
    submit_unix: Optional[float]
    start_unix: Optional[float]
    end_unix: Optional[float]
    steps_folded: int = 0
    #: Total trace rows folded into this record (allocation row, if present,
    #: plus steps) — what the conservation invariant counts.
    rows_folded: int = 1

    @property
    def footprint_bytes(self) -> int:
        """Aggregate memory footprint: per-task peak RSS × nodes."""
        return self.max_rss_bytes * max(self.nnodes, 1)

    @property
    def wait_s(self) -> float:
        """Queueing delay between submit and start (0 when unknown)."""
        if self.submit_unix is None or self.start_unix is None:
            return 0.0
        return max(self.start_unix - self.submit_unix, 0.0)


@dataclass(frozen=True)
class SkippedRow:
    """One row (or whole job group) the reader refused, with its reason."""

    line_no: int
    reason: str
    text: str


@dataclass
class IngestReport:
    """Running totals of one ingestion pass (the ``SkippedRows`` report).

    Conservation invariant (pinned by the property suite): every data row
    read is either folded into a yielded job (allocation + steps) or counted
    in exactly one skip reason::

        rows_read == rows_in_yielded_jobs + rows_skipped

    ``examples`` retains the first few :class:`SkippedRow` per reason so a
    report names *what* was malformed without buffering a malformed trace.
    """

    rows_read: int = 0
    rows_in_yielded_jobs: int = 0
    jobs_yielded: int = 0
    steps_folded: int = 0
    skipped_by_reason: dict = field(default_factory=dict)
    examples: list = field(default_factory=list)
    max_examples: int = 20

    @property
    def rows_skipped(self) -> int:
        """Total rows refused, over all reasons."""
        return sum(self.skipped_by_reason.values())

    @property
    def conserved(self) -> bool:
        """Whether every row read is accounted for (fold or skip)."""
        return self.rows_read == self.rows_in_yielded_jobs + self.rows_skipped

    def skip(self, line_no: int, reason: str, text: str, rows: int = 1) -> None:
        """Record ``rows`` rows skipped for ``reason`` (one example kept)."""
        self.skipped_by_reason[reason] = self.skipped_by_reason.get(reason, 0) + rows
        if len(self.examples) < self.max_examples:
            self.examples.append(SkippedRow(line_no=line_no, reason=reason, text=text[:120]))
        metrics().counter("data.slurm.rows_skipped").inc(rows)

    def summary(self) -> dict:
        """JSON-friendly report (what the CLI prints after a replay)."""
        return {
            "rows_read": self.rows_read,
            "jobs_yielded": self.jobs_yielded,
            "steps_folded": self.steps_folded,
            "rows_skipped": self.rows_skipped,
            "skipped_by_reason": dict(sorted(self.skipped_by_reason.items())),
            "conserved": self.conserved,
        }


@dataclass
class _Row:
    """One parsed data row, before folding."""

    line_no: int
    base_id: str
    step: str  # "" for the allocation row
    state: str
    nnodes: int
    elapsed_s: float
    max_rss_bytes: int
    ave_rss_bytes: int
    submit_unix: Optional[float]
    start_unix: Optional[float]
    end_unix: Optional[float]


#: States that mean "this job never ran (or has not finished) and cannot be
#: replayed".  ``CANCELLED`` jobs that *did* run (elapsed > 0) replay fine.
_UNFINISHED_STATES = ("RUNNING", "PENDING", "REQUEUED", "SUSPENDED", "RESIZING")


class SacctReader:
    """Streaming, step-folding reader of one ``sacct -P`` dump.

    Parameters
    ----------
    source:
        Path to the dump, or any iterable of lines (open file, list,
        generator) — the reader never rewinds, so a pipe works.
    delimiter:
        Field separator (``sacct -P`` uses ``|``).
    report:
        Optional shared :class:`IngestReport` (a fresh one by default,
        exposed as :attr:`report`).

    Iterating yields :class:`TraceJob` records in trace order.  The reader
    holds at most one job's rows at a time; :attr:`report` is live during
    iteration, complete after it.
    """

    def __init__(
        self,
        source: Union[str, Path, Iterable[str]],
        delimiter: str = "|",
        report: Optional[IngestReport] = None,
    ) -> None:
        self.source = source
        self.delimiter = delimiter
        self.report = report if report is not None else IngestReport()
        self._columns: Optional[dict] = None

    # -- header -------------------------------------------------------------------

    def _resolve_columns(self, header_line: str) -> dict:
        names = [name.strip() for name in header_line.rstrip("\n").split(self.delimiter)]
        index = {name: i for i, name in enumerate(names)}
        columns = {}
        missing = []
        for wanted in REQUIRED_FIELDS + ("AveRSS", "Start", "End"):
            found = index.get(wanted)
            if found is None:
                fallback = _FIELD_FALLBACKS.get(wanted)
                found = index.get(fallback) if fallback else None
            if found is None:
                if wanted in REQUIRED_FIELDS:
                    missing.append(wanted)
                continue
            columns[wanted] = found
        if missing:
            raise TraceError(
                f"sacct header is missing required column(s) {missing}; "
                f"got {names}. Export with: sacct -P -o "
                "JobIDRaw,State,NNodes,ElapsedRaw,MaxRSS,AveRSS,Submit,Start,End"
            )
        columns["_width"] = len(names)
        return columns

    # -- row parsing --------------------------------------------------------------

    def _parse_row(self, line_no: int, line: str) -> Optional[_Row]:
        """One data row, or ``None`` after recording a skip."""
        fields = line.rstrip("\n").split(self.delimiter)
        columns = self._columns
        assert columns is not None
        if len(fields) != columns["_width"]:
            self.report.skip(line_no, "column-count", line)
            return None

        def cell(name: str) -> str:
            i = columns.get(name)
            return fields[i].strip() if i is not None else ""

        job_id = cell("JobIDRaw")
        if not job_id:
            self.report.skip(line_no, "empty-job-id", line)
            return None
        base_id, _, step = job_id.partition(".")
        try:
            nnodes_text = cell("NNodes")
            nnodes = int(nnodes_text) if nnodes_text else 0
            elapsed_text = cell("ElapsedRaw")
            elapsed = parse_elapsed(elapsed_text) if elapsed_text else 0.0
            max_rss_text = cell("MaxRSS")
            max_rss = parse_size(max_rss_text, default_multiplier=KiB) if max_rss_text else 0
            ave_rss_text = cell("AveRSS")
            ave_rss = parse_size(ave_rss_text, default_multiplier=KiB) if ave_rss_text else 0
            submit = parse_timestamp(cell("Submit"))
            start = parse_timestamp(cell("Start"))
            end = parse_timestamp(cell("End"))
        except (ConfigurationError, ValueError) as exc:
            self.report.skip(line_no, "malformed-field", f"{line!r}: {exc}")
            return None
        if nnodes < 0:
            self.report.skip(line_no, "malformed-field", f"{line!r}: negative NNodes")
            return None
        return _Row(
            line_no=line_no,
            base_id=base_id,
            step=step,
            state=cell("State"),
            nnodes=nnodes,
            elapsed_s=elapsed,
            max_rss_bytes=max_rss,
            ave_rss_bytes=ave_rss,
            submit_unix=submit,
            start_unix=start,
            end_unix=end,
        )

    # -- folding ------------------------------------------------------------------

    def _fold(self, group: list) -> Optional[TraceJob]:
        """Fold one job's rows (allocation first if present) into a TraceJob.

        Folds are monotone: numeric fields take the maximum over all rows, so
        a folded value is never below any constituent step's — the invariant
        the property suite pins.  Returns ``None`` (after recording a skip
        covering the *whole group*) for jobs that cannot be replayed.
        """
        allocation = next((row for row in group if not row.step), group[0])
        state = allocation.state.split()[0] if allocation.state else ""
        submits = [r.submit_unix for r in group if r.submit_unix is not None]
        starts = [r.start_unix for r in group if r.start_unix is not None]
        ends = [r.end_unix for r in group if r.end_unix is not None]
        job = TraceJob(
            job_id=allocation.base_id,
            state=state,
            nnodes=max(row.nnodes for row in group),
            elapsed_s=max(row.elapsed_s for row in group),
            max_rss_bytes=max(row.max_rss_bytes for row in group),
            ave_rss_bytes=max(row.ave_rss_bytes for row in group),
            submit_unix=min(submits) if submits else None,
            start_unix=min(starts) if starts else None,
            end_unix=max(ends) if ends else None,
            steps_folded=sum(1 for row in group if row.step),
            rows_folded=len(group),
        )
        if state in _UNFINISHED_STATES:
            reason = "unfinished"
        elif job.elapsed_s <= 0.0:
            # CANCELLED-before-start and zero-length jobs have no replayable
            # runtime; CANCELLED jobs that ran fold like COMPLETED ones.
            reason = "cancelled-no-runtime" if state.startswith("CANCELLED") else "zero-elapsed"
        elif job.submit_unix is None:
            reason = "no-submit-time"
        else:
            reason = None
        if reason is not None:
            self.report.skip(allocation.line_no, reason, f"job {job.job_id}", rows=len(group))
            return None
        self.report.rows_in_yielded_jobs += len(group)
        self.report.steps_folded += job.steps_folded
        self.report.jobs_yielded += 1
        registry = metrics()
        registry.counter("data.slurm.steps_folded").inc(job.steps_folded)
        registry.counter("data.slurm.jobs_yielded").inc()
        return job

    # -- iteration ----------------------------------------------------------------

    def _lines(self) -> Iterator[str]:
        if isinstance(self.source, (str, Path)):
            with open(self.source, "r", encoding="utf-8") as fh:
                yield from fh
        else:
            yield from self.source

    def __iter__(self) -> Iterator[TraceJob]:
        rows_read = metrics().counter("data.slurm.rows_read")
        lines = self._lines()
        header = None
        for line in lines:
            if line.strip():
                header = line
                break
        if header is None:
            raise TraceError("empty sacct dump: no header line")
        self._columns = self._resolve_columns(header)
        group: list = []
        for line_no, line in enumerate(lines, start=2):
            if not line.strip():
                continue
            self.report.rows_read += 1
            rows_read.inc()
            row = self._parse_row(line_no, line)
            if row is None:
                continue
            if group and row.base_id != group[0].base_id:
                job = self._fold(group)
                group = [row]
                if job is not None:
                    yield job
            else:
                group.append(row)
        if group:
            job = self._fold(group)
            if job is not None:
                yield job


def read_sacct(
    source: Union[str, Path, Iterable[str]],
    limit: Optional[int] = None,
    window: Optional[tuple] = None,
    report: Optional[IngestReport] = None,
) -> Iterator[TraceJob]:
    """Stream :class:`TraceJob` records from a ``sacct -P`` dump.

    ``limit`` stops after that many yielded jobs (the stream is abandoned, so
    ingestion work is bounded too).  ``window`` is ``(start, end)`` in
    seconds relative to the **first yielded job's submit time**; jobs
    submitting outside it are filtered (counted under the
    ``outside-window`` skip reason).  Pass a shared ``report`` to observe
    totals; otherwise attach via :class:`SacctReader` directly.  The
    conservation invariant is exact for fully consumed streams; a ``limit``
    abandons the stream, leaving the trailing in-flight group's rows read
    but neither folded nor skipped.
    """
    reader = SacctReader(source, report=report)
    lo, hi = window if window is not None else (None, None)
    origin: Optional[float] = None
    yielded = 0
    jobs = iter(reader)
    while limit is None or yielded < limit:
        job = next(jobs, None)
        if job is None:
            return
        if window is not None:
            if origin is None:
                origin = job.submit_unix or 0.0
            offset = (job.submit_unix or 0.0) - origin
            if (lo is not None and offset < lo) or (hi is not None and offset > hi):
                # Re-book the group from "yielded" to a skip reason so the
                # conservation invariant holds for windowed reads too.
                reader.report.rows_in_yielded_jobs -= job.rows_folded
                reader.report.jobs_yielded -= 1
                reader.report.steps_folded -= job.steps_folded
                reader.report.skip(
                    0, "outside-window", f"job {job.job_id}", rows=job.rows_folded
                )
                continue
        yielded += 1
        yield job


# ---------------------------------------------------------------------------
# Synthetic trace generation (fixtures, benchmarks, anonymized examples).
# ---------------------------------------------------------------------------

#: Field order of synthesized dumps — a superset of :data:`REQUIRED_FIELDS`
#: in a realistic sacct column order.
SYNTHETIC_FIELDS = (
    "JobIDRaw",
    "JobName",
    "State",
    "NNodes",
    "ElapsedRaw",
    "MaxRSS",
    "AveRSS",
    "Submit",
    "Start",
    "End",
)

#: Trace epoch of synthesized dumps (an arbitrary, fixed, anonymized date).
_SYNTHETIC_EPOCH = datetime(2024, 1, 1, 0, 0, 0, tzinfo=timezone.utc)


def _stamp(offset_s: float) -> str:
    return (_SYNTHETIC_EPOCH + timedelta(seconds=float(offset_s))).strftime(
        "%Y-%m-%dT%H:%M:%S"
    )


def synthesize_sacct_lines(
    n_jobs: int,
    seed: int = 0,
    cancelled_fraction: float = 0.05,
    malformed_fraction: float = 0.01,
    mean_interarrival_s: float = 90.0,
) -> Iterator[str]:
    """Generate an anonymized synthetic ``sacct -P`` dump, one line at a time.

    Jobs mimic a production mix: 1–64 nodes (log-uniform), minutes-to-hours
    elapsed, KiB-suffixed RSS around a few GiB per task, one allocation row
    plus ``.batch``/``.extern`` and 0–2 numbered steps whose RSS never
    exceeds the fold invariant direction being tested (steps may exceed the
    allocation row, which carries no RSS — exactly like real sacct output).
    A ``cancelled_fraction`` of jobs are CANCELLED before starting and a
    ``malformed_fraction`` of rows are deliberately corrupted, so fixtures
    exercise every skip reason.  Fully deterministic in ``seed``.
    """
    rng = np.random.default_rng(seed)
    yield "|".join(SYNTHETIC_FIELDS) + "\n"
    submit = 0.0
    for index in range(n_jobs):
        submit += float(rng.exponential(mean_interarrival_s))
        job_id = str(100000 + index)
        name = f"job-{index:05d}"
        nnodes = int(np.clip(np.round(2.0 ** rng.uniform(0.0, 6.0)), 1, 64))
        elapsed = float(np.round(rng.uniform(60.0, 14400.0)))
        wait = float(rng.exponential(120.0))
        start = submit + wait
        end = start + elapsed
        rss_kib = int(rng.uniform(0.2, 8.0) * 1024 * 1024)  # 0.2-8 GiB per task

        def row(step: str, state: str, nn: int, el: float, max_rss: str, ave_rss: str,
                sub: float, st: Optional[float], en: Optional[float]) -> str:
            cells = (
                job_id + (f".{step}" if step else ""),
                name if not step else step,
                state,
                str(nn),
                str(int(el)),
                max_rss,
                ave_rss,
                _stamp(sub),
                _stamp(st) if st is not None else "Unknown",
                _stamp(en) if en is not None else "Unknown",
            )
            return "|".join(cells) + "\n"

        if rng.uniform() < cancelled_fraction:
            yield row("", "CANCELLED by 1000", nnodes, 0.0, "", "", submit, None, None)
            continue
        # Allocation row: no RSS (sacct reports RSS on steps only).
        yield row("", "COMPLETED", nnodes, elapsed, "", "", submit, start, end)
        steps = ["batch", "extern"] + [str(i) for i in range(int(rng.integers(0, 3)))]
        for step in steps:
            step_rss = max(int(rss_kib * rng.uniform(0.3, 1.0)), 1)
            ave = max(int(step_rss * rng.uniform(0.5, 1.0)), 1)
            step_elapsed = elapsed if step in ("batch", "extern") else elapsed * rng.uniform(0.1, 1.0)
            step_nodes = 1 if step == "batch" else nnodes
            yield row(
                step, "COMPLETED", step_nodes, step_elapsed,
                f"{step_rss}K", f"{ave}K", submit, start, end,
            )
        if rng.uniform() < malformed_fraction:
            yield f"{job_id}.???|garbage-row-with-too-few-columns\n"


def write_synthetic_trace(path: Union[str, Path], n_jobs: int, seed: int = 0, **kwargs) -> int:
    """Write a synthetic dump to ``path``; returns the number of lines."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for line in synthesize_sacct_lines(n_jobs, seed=seed, **kwargs):
            fh.write(line)
            count += 1
    return count
