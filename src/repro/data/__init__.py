"""Reference and production data feeding the simulators.

* :mod:`repro.data.top500` — supercomputer memory configurations
  (Figure 1, Table 1).
* :mod:`repro.data.slurm` — streaming ingestion of real Slurm ``sacct``
  traces into replayable job streams (ROADMAP item 3).
"""

from .slurm import (
    IngestReport,
    SacctReader,
    TraceJob,
    read_sacct,
    synthesize_sacct_lines,
    write_synthetic_trace,
)
from .top500 import (
    MEMORY_EVOLUTION,
    MemoryEvolutionPoint,
    SystemMemoryConfig,
    TOP10_NOV2022,
    memory_evolution,
    multi_tier_share,
    system,
    top10_systems,
)

__all__ = [
    "IngestReport",
    "SacctReader",
    "TraceJob",
    "read_sacct",
    "synthesize_sacct_lines",
    "write_synthetic_trace",
    "MEMORY_EVOLUTION",
    "MemoryEvolutionPoint",
    "SystemMemoryConfig",
    "TOP10_NOV2022",
    "memory_evolution",
    "multi_tier_share",
    "system",
    "top10_systems",
]
