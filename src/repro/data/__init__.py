"""Reference data: supercomputer memory configurations (Figure 1, Table 1)."""

from .top500 import (
    MEMORY_EVOLUTION,
    MemoryEvolutionPoint,
    SystemMemoryConfig,
    TOP10_NOV2022,
    memory_evolution,
    multi_tier_share,
    system,
    top10_systems,
)

__all__ = [
    "MEMORY_EVOLUTION",
    "MemoryEvolutionPoint",
    "SystemMemoryConfig",
    "TOP10_NOV2022",
    "memory_evolution",
    "multi_tier_share",
    "system",
    "top10_systems",
]
