"""Span-based tracing with monotonic timing and parent/child nesting.

A *span* brackets one unit of work — a fixed-point solve, a baseline
profiling run, a whole scheduler event loop — and records its wall-clock
duration plus arbitrary attributes::

    from repro.telemetry import trace_span

    with trace_span("fabric.solve", nodes=4):
        ...

Spans nest: the span active when a new one opens becomes its parent, so an
exported trace reconstructs the call tree (``parent``/``depth`` fields).
Span indices are assigned in *opening* order, which makes trace output
deterministic for a fixed clock — the property the telemetry tests pin.

Tracing shares the process-wide enabled flag with the metrics registry.
While disabled, :func:`trace_span` returns one shared no-op context manager
whose ``__enter__``/``__exit__`` do nothing; that flag check is the entire
cost of a disabled call site.

The clock defaults to :func:`time.perf_counter` (monotonic).  Tests inject a
deterministic fake clock via :class:`Tracer`'s ``clock`` parameter.
"""

from __future__ import annotations

import json
import time
from typing import IO, Callable, Iterable, Mapping, Optional


class SpanRecord:
    """One recorded span: timing, position in the trace tree, attributes."""

    __slots__ = ("name", "index", "parent", "depth", "start", "end", "attrs")

    def __init__(
        self,
        name: str,
        index: int,
        parent: Optional[int],
        depth: int,
        start: float,
        attrs: dict,
    ) -> None:
        self.name = name
        self.index = index
        self.parent = parent
        self.depth = depth
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Wall-clock seconds between enter and exit (0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def as_record(self) -> dict:
        return {
            "kind": "span",
            "name": self.name,
            "index": self.index,
            "parent": self.parent,
            "depth": self.depth,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class _ActiveSpan:
    """Context manager pushing/popping one span on its tracer's stack."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record

    def __enter__(self) -> SpanRecord:
        return self._record

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self._record)


class _NoopSpan:
    """Shared do-nothing context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects spans for one process (or one test, with a fake clock)."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.spans: list[SpanRecord] = []
        self._stack: list[SpanRecord] = []

    def span(self, name: str, **attrs) -> _ActiveSpan:
        """Open a span; use as ``with tracer.span("name", key=value):``."""
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            name=name,
            index=len(self.spans),
            parent=parent.index if parent is not None else None,
            depth=len(self._stack),
            start=self.clock(),
            attrs=attrs,
        )
        self.spans.append(record)
        self._stack.append(record)
        return _ActiveSpan(self, record)

    def _close(self, record: SpanRecord) -> None:
        record.end = self.clock()
        # Unwind to (and including) the closing span so a mis-nested exit
        # cannot leave stale parents behind.
        while self._stack:
            top = self._stack.pop()
            if top is record:
                break

    def reset(self) -> None:
        self.spans.clear()
        self._stack.clear()

    # -- aggregation ----------------------------------------------------------------

    def aggregate(self) -> dict[str, dict]:
        """Per-span-name totals: count, total/mean/max duration (closed spans)."""
        stats: dict[str, dict] = {}
        for span in self.spans:
            if span.end is None:
                continue
            entry = stats.setdefault(
                span.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            entry["count"] += 1
            entry["total_s"] += span.duration
            entry["max_s"] = max(entry["max_s"], span.duration)
        for entry in stats.values():
            entry["mean_s"] = entry["total_s"] / entry["count"]
        return stats

    def top_spans(self, n: int = 10) -> list[tuple[str, dict]]:
        """The ``n`` span names with the largest total duration, descending."""
        stats = self.aggregate()
        ordered = sorted(stats.items(), key=lambda kv: (-kv[1]["total_s"], kv[0]))
        return ordered[:n]

    # -- JSONL ----------------------------------------------------------------------

    def write_jsonl(self, stream: IO[str]) -> int:
        """Write every closed span as one JSON line; returns lines written."""
        count = 0
        for span in self.spans:
            if span.end is None:
                continue
            stream.write(json.dumps(span.as_record(), sort_keys=True) + "\n")
            count += 1
        return count

    @classmethod
    def from_records(cls, records: Iterable[Mapping]) -> "Tracer":
        """Rebuild a tracer's span list from exported records."""
        tracer = cls()
        for record in records:
            if record.get("kind") != "span":
                continue
            span = SpanRecord(
                name=record["name"],
                index=record["index"],
                parent=record["parent"],
                depth=record["depth"],
                start=record["start"],
                attrs=dict(record.get("attrs", {})),
            )
            span.end = record["end"]
            tracer.spans.append(span)
        tracer.spans.sort(key=lambda s: s.index)
        return tracer
