"""Render a telemetry dump as a human-readable report.

``repro-dmem telemetry report run.jsonl`` goes through :func:`render_report`:
metrics first (counters and gauges as single values, histograms as their
summary statistics, timeseries as row counts), then the top spans by total
wall-clock time.  The same renderer works on the live in-process telemetry,
which is what ``--telemetry`` without ``--trace-out`` prints after a run.
"""

from __future__ import annotations

from .registry import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries
from .tracing import Tracer


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "nan"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def render_metrics(registry: MetricsRegistry) -> list[str]:
    """One line per instrument, sorted by metric name."""
    lines: list[str] = []
    for name in registry.names():
        instrument = registry.get(name)
        if isinstance(instrument, Counter):
            lines.append(f"  {name} = {_fmt(instrument.value)}")
        elif isinstance(instrument, Gauge):
            lines.append(f"  {name} = {_fmt(instrument.value)} (gauge)")
        elif isinstance(instrument, Histogram):
            s = instrument.summary()
            lines.append(
                f"  {name}: count={s['count']} mean={_fmt(s['mean'])} "
                f"p50={_fmt(s['p50'])} p90={_fmt(s['p90'])} max={_fmt(s['max'])}"
            )
        elif isinstance(instrument, TimeSeries):
            lines.append(f"  {name}: {len(instrument)} rows ({', '.join(instrument.columns)})")
    return lines


def render_spans(tracer: Tracer, top: int = 10) -> list[str]:
    """The ``top`` span names by total duration, one line each."""
    lines: list[str] = []
    for name, stats in tracer.top_spans(top):
        lines.append(
            f"  {name}: count={stats['count']} total={stats['total_s']:.6f}s "
            f"mean={stats['mean_s']:.6f}s max={stats['max_s']:.6f}s"
        )
    return lines


def render_report(registry: MetricsRegistry, tracer: Tracer, top: int = 10) -> str:
    """The full report: metrics section, then top spans."""
    lines = ["telemetry report", "metrics:"]
    metric_lines = render_metrics(registry)
    lines.extend(metric_lines if metric_lines else ["  (none recorded)"])
    lines.append(f"top spans (by total time, max {top}):")
    span_lines = render_spans(tracer, top)
    lines.extend(span_lines if span_lines else ["  (none recorded)"])
    return "\n".join(lines)
