"""Schema of the committed perf-benchmark trajectory (``BENCH_cosim.json``).

``tools/bench_perf.py`` emits one schema-versioned JSON document per run;
the copy at the repository root is the recorded perf point of the current
PR, and CI's perf-smoke job validates every freshly emitted document against
:func:`validate_bench` so the trajectory stays machine-comparable across
PRs, and diffs it against the committed baseline with :func:`compare_bench`
so a perf regression fails the job instead of silently entering the record.

Document shape (version 5)::

    {
      "schema": "repro.bench.cosim",
      "version": 4,
      "created_unix": 1754524800.0,
      "quick": false,
      "python": "3.12.3",
      "benchmarks": [
        {"name": "fabric_solver.small", "group": "fabric_solver",
         "config": {...}, "repeats": 30,
         "mean_s": ..., "min_s": ..., "throughput_per_s": ...,
         "extra": {...}},
        ...
      ],
      "telemetry_overhead": {
        "noop_span_ns": ..., "noop_counter_ns": ...,
        "events": ..., "hook_calls": ...,
        "disabled_wall_s": ..., "enabled_wall_s": ...,
        "enabled_overhead_pct": ..., "disabled_overhead_pct": ...
      }
    }

Version 2 added the cluster-scale groups (``cluster_fabric`` — epoch
stepping of the whole-cluster co-simulator — and ``solver_vectorized`` —
batched NumPy vs scalar contention solving at 100 racks).  Version 3 added
``fault_injection`` — the disabled-path cost of the fault layer (its
``extra.disabled_overhead_pct`` is the < 2% acceptance bound of
``docs/failure_model.md``) plus a seeded chaos scenario.  Version 4 added
the ``repro.parallel`` groups: ``sweep_sharded`` — a repeated-query sweep
through :class:`repro.parallel.SweepRunner` at 8 workers versus a naive
serial loop — and ``cluster_step_batched`` — the fused batched cluster
epoch path versus the per-rack reference loop at 100 racks.  Version 5
added ``trace_ingest`` — streaming :func:`repro.data.slurm.read_sacct`
throughput on a synthetic ``sacct`` dump (``extra.rows_per_s`` is the
recorded ingestion rate).  Older documents remain readable (each version
must only cover its own groups), so the committed trajectory stays
comparable across schema bumps.

Every benchmark group of a document's version must be present so a missing
measurement is a schema error, not a silently shorter file.
"""

from __future__ import annotations

from typing import Mapping

BENCH_SCHEMA = "repro.bench.cosim"
BENCH_SCHEMA_VERSION = 5

#: Groups a valid document must cover, per schema version (the acceptance
#: surface of the harness).
REQUIRED_GROUPS_V1 = ("fabric_solver", "rack_cosim_step", "cluster_events")
REQUIRED_GROUPS_V2 = REQUIRED_GROUPS_V1 + ("cluster_fabric", "solver_vectorized")
REQUIRED_GROUPS_V3 = REQUIRED_GROUPS_V2 + ("fault_injection",)
REQUIRED_GROUPS_V4 = REQUIRED_GROUPS_V3 + ("sweep_sharded", "cluster_step_batched")
REQUIRED_GROUPS = REQUIRED_GROUPS_V4 + ("trace_ingest",)

REQUIRED_GROUPS_BY_VERSION = {
    1: REQUIRED_GROUPS_V1,
    2: REQUIRED_GROUPS_V2,
    3: REQUIRED_GROUPS_V3,
    4: REQUIRED_GROUPS_V4,
    5: REQUIRED_GROUPS,
}

#: Schema versions :func:`validate_bench` accepts — derived from the group
#: table so a version bump can never silently drop support for the committed
#: baseline's version (hand-maintaining this tuple once did exactly that).
SUPPORTED_VERSIONS = tuple(sorted(REQUIRED_GROUPS_BY_VERSION))

_BENCH_KEYS = ("name", "group", "config", "repeats", "mean_s", "min_s", "throughput_per_s")
_OVERHEAD_KEYS = (
    "noop_span_ns",
    "noop_counter_ns",
    "events",
    "hook_calls",
    "disabled_wall_s",
    "enabled_wall_s",
    "enabled_overhead_pct",
    "disabled_overhead_pct",
)


def validate_bench(data: Mapping) -> list[str]:
    """All schema violations of one bench document (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(data, Mapping):
        return ["document is not a JSON object"]
    if data.get("schema") != BENCH_SCHEMA:
        errors.append(f"schema is {data.get('schema')!r}, expected {BENCH_SCHEMA!r}")
    version = data.get("version")
    if version not in SUPPORTED_VERSIONS:
        errors.append(
            f"version is {version!r}, expected one of {SUPPORTED_VERSIONS}"
        )
    for key in ("created_unix", "python"):
        if key not in data:
            errors.append(f"missing top-level key {key!r}")
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        errors.append("benchmarks must be a non-empty list")
        benchmarks = []
    groups = set()
    for i, bench in enumerate(benchmarks):
        if not isinstance(bench, Mapping):
            errors.append(f"benchmarks[{i}] is not an object")
            continue
        for key in _BENCH_KEYS:
            if key not in bench:
                errors.append(f"benchmarks[{i}] ({bench.get('name')!r}) missing {key!r}")
        groups.add(bench.get("group"))
        for key in ("mean_s", "min_s", "throughput_per_s"):
            value = bench.get(key)
            if isinstance(value, (int, float)) and value < 0:
                errors.append(f"benchmarks[{i}].{key} is negative")
    required = REQUIRED_GROUPS_BY_VERSION.get(version, REQUIRED_GROUPS)
    for group in required:
        if group not in groups:
            errors.append(f"no benchmark covers required group {group!r}")
    overhead = data.get("telemetry_overhead")
    if not isinstance(overhead, Mapping):
        errors.append("missing telemetry_overhead object")
    else:
        for key in _OVERHEAD_KEYS:
            if key not in overhead:
                errors.append(f"telemetry_overhead missing {key!r}")
    return errors


#: Default regression threshold of :func:`compare_bench`: a benchmark must be
#: at least 50% slower than the baseline before it counts as a regression.
#: Generous on purpose — CI runners are noisy, and the committed baseline may
#: have been recorded on different hardware; the comparator is a backstop
#: against order-of-magnitude slips, not a microbenchmark gate.
DEFAULT_REGRESSION_THRESHOLD = 0.5


def compare_bench(
    baseline: Mapping,
    current: Mapping,
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> tuple[list[str], list[str]]:
    """Diff two bench documents: ``(regressions, skipped)``.

    Benchmarks are matched by ``name``; a pair is only *comparable* when both
    sides ran the identical ``config`` (quick and full runs share configs for
    the groups meant to be compared across them, and differ where wall times
    would be incommensurate).  A comparable benchmark regresses when its
    best-of time grew by more than ``threshold`` (relative): ``min_s`` is
    used rather than ``mean_s`` because it is the noise-robust statistic on
    shared CI runners.  Non-comparable or one-sided benchmarks are reported
    in ``skipped`` so a silently shrinking comparison surface is visible.

    A whole benchmark *group* absent from the baseline — the normal state of
    affairs right after a schema bump, when the committed document predates
    the group — is collapsed into one ``group '...': not in baseline`` skip
    instead of a per-benchmark message per row, and is never a regression.
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    base_by_name = {
        b.get("name"): b
        for b in baseline.get("benchmarks", ())
        if isinstance(b, Mapping)
    }
    base_groups = {
        b.get("group")
        for b in baseline.get("benchmarks", ())
        if isinstance(b, Mapping)
    }
    regressions: list[str] = []
    skipped: list[str] = []
    missing_groups: dict = {}
    seen = set()
    for bench in current.get("benchmarks", ()):
        if not isinstance(bench, Mapping):
            continue
        name = bench.get("name")
        seen.add(name)
        base = base_by_name.get(name)
        if base is None:
            group = bench.get("group")
            if group not in base_groups:
                missing_groups[group] = missing_groups.get(group, 0) + 1
            else:
                skipped.append(f"{name}: not in baseline")
            continue
        if base.get("config") != bench.get("config"):
            skipped.append(f"{name}: config differs from baseline")
            continue
        base_min = base.get("min_s")
        cur_min = bench.get("min_s")
        if not isinstance(base_min, (int, float)) or not isinstance(
            cur_min, (int, float)
        ) or base_min <= 0:
            skipped.append(f"{name}: missing or unusable min_s")
            continue
        ratio = cur_min / base_min
        if ratio > 1.0 + threshold:
            regressions.append(
                f"{name}: {cur_min:.6f}s vs baseline {base_min:.6f}s "
                f"({ratio:.2f}x, threshold {1.0 + threshold:.2f}x)"
            )
    for group, count in missing_groups.items():
        skipped.append(
            f"group {group!r}: not in baseline "
            f"({count} benchmark{'s' if count != 1 else ''}; "
            "baseline predates this group)"
        )
    for name in base_by_name:
        if name not in seen:
            skipped.append(f"{name}: not in current run")
    return regressions, skipped
