"""Schema of the committed perf-benchmark trajectory (``BENCH_cosim.json``).

``tools/bench_perf.py`` emits one schema-versioned JSON document per run;
the copy at the repository root is the recorded perf point of the current
PR, and CI's perf-smoke job validates every freshly emitted document against
:func:`validate_bench` so the trajectory stays machine-comparable across
PRs before any thresholds are enforced.

Document shape (version 1)::

    {
      "schema": "repro.bench.cosim",
      "version": 1,
      "created_unix": 1754524800.0,
      "quick": false,
      "python": "3.12.3",
      "benchmarks": [
        {"name": "fabric_solver.small", "group": "fabric_solver",
         "config": {...}, "repeats": 30,
         "mean_s": ..., "min_s": ..., "throughput_per_s": ...,
         "extra": {...}},
        ...
      ],
      "telemetry_overhead": {
        "noop_span_ns": ..., "noop_counter_ns": ...,
        "events": ..., "hook_calls": ...,
        "disabled_wall_s": ..., "enabled_wall_s": ...,
        "enabled_overhead_pct": ..., "disabled_overhead_pct": ...
      }
    }

Every benchmark group must be present so a missing measurement is a schema
error, not a silently shorter file.
"""

from __future__ import annotations

from typing import Mapping

BENCH_SCHEMA = "repro.bench.cosim"
BENCH_SCHEMA_VERSION = 1

#: Groups a valid document must cover (the acceptance surface of the harness).
REQUIRED_GROUPS = ("fabric_solver", "rack_cosim_step", "cluster_events")

_BENCH_KEYS = ("name", "group", "config", "repeats", "mean_s", "min_s", "throughput_per_s")
_OVERHEAD_KEYS = (
    "noop_span_ns",
    "noop_counter_ns",
    "events",
    "hook_calls",
    "disabled_wall_s",
    "enabled_wall_s",
    "enabled_overhead_pct",
    "disabled_overhead_pct",
)


def validate_bench(data: Mapping) -> list[str]:
    """All schema violations of one bench document (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(data, Mapping):
        return ["document is not a JSON object"]
    if data.get("schema") != BENCH_SCHEMA:
        errors.append(f"schema is {data.get('schema')!r}, expected {BENCH_SCHEMA!r}")
    if data.get("version") != BENCH_SCHEMA_VERSION:
        errors.append(
            f"version is {data.get('version')!r}, expected {BENCH_SCHEMA_VERSION}"
        )
    for key in ("created_unix", "python"):
        if key not in data:
            errors.append(f"missing top-level key {key!r}")
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        errors.append("benchmarks must be a non-empty list")
        benchmarks = []
    groups = set()
    for i, bench in enumerate(benchmarks):
        if not isinstance(bench, Mapping):
            errors.append(f"benchmarks[{i}] is not an object")
            continue
        for key in _BENCH_KEYS:
            if key not in bench:
                errors.append(f"benchmarks[{i}] ({bench.get('name')!r}) missing {key!r}")
        groups.add(bench.get("group"))
        for key in ("mean_s", "min_s", "throughput_per_s"):
            value = bench.get(key)
            if isinstance(value, (int, float)) and value < 0:
                errors.append(f"benchmarks[{i}].{key} is negative")
    for group in REQUIRED_GROUPS:
        if group not in groups:
            errors.append(f"no benchmark covers required group {group!r}")
    overhead = data.get("telemetry_overhead")
    if not isinstance(overhead, Mapping):
        errors.append("missing telemetry_overhead object")
    else:
        for key in _OVERHEAD_KEYS:
            if key not in overhead:
                errors.append(f"telemetry_overhead missing {key!r}")
    return errors
