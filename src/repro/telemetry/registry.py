"""Process-wide metrics registry: counters, gauges, histograms, timeseries.

One :class:`MetricsRegistry` per process is the single surface every
subsystem reports through — the fixed-point solver's iteration counts, the
pool's admission decisions, the scheduler's event throughput.  Instrument
handles are get-or-create by name, so instrumented code never needs to
thread registry objects around::

    from repro.telemetry import metrics

    metrics().counter("fabric.solve.calls").inc()
    metrics().histogram("fabric.solve.iterations").observe(n)

Telemetry is **off by default**.  While disabled, :func:`metrics` returns a
shared no-op registry whose instruments discard everything; the cost of an
instrumented call site is then one function call plus one attribute lookup,
which is what keeps the disabled-mode overhead unmeasurable on the hot
paths (``tools/bench_perf.py`` measures exactly this and records it in
``BENCH_cosim.json``).

Instrument types
----------------

=============  ====================================================
Counter        monotonically increasing count (events, admissions)
Gauge          last-written value (leased bytes, queue depth)
Histogram      distribution of observations (iterations, latencies)
TimeSeries     rows of (time, columns) — simulation-output timelines
=============  ====================================================

:class:`TimeSeries` is special: it backs simulation *output* (the pool
timeline figures), so :class:`~repro.fabric.cosim.RackTelemetry` constructs
one directly and it always records, independent of the enabled flag.
Naming convention: dot-separated lowercase paths, ``<package>.<subject>.<what>``
(catalogued in ``docs/observability.md``).
"""

from __future__ import annotations

import json
import math
from typing import IO, Iterable, Mapping, Optional

#: Version tag written into every metrics/trace JSONL export.
TELEMETRY_SCHEMA = "repro.telemetry"
TELEMETRY_SCHEMA_VERSION = 1


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "description", "_value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self._value += amount

    def as_record(self) -> dict:
        return {"kind": "metric", "type": "counter", "name": self.name, "value": self._value}


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "description", "_value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def as_record(self) -> dict:
        return {"kind": "metric", "type": "gauge", "name": self.name, "value": self._value}


class Histogram:
    """Distribution of observations (all samples kept; runs are bounded)."""

    __slots__ = ("name", "description", "_values")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def values(self) -> tuple[float, ...]:
        return tuple(self._values)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the observations (0-100)."""
        if not self._values:
            return math.nan
        ordered = sorted(self._values)
        rank = max(int(math.ceil(q / 100.0 * len(ordered))) - 1, 0)
        return ordered[min(rank, len(ordered) - 1)]

    def summary(self) -> dict:
        """count / sum / mean / min / p50 / p90 / max of the observations."""
        if not self._values:
            return {"count": 0, "sum": 0.0, "mean": math.nan, "min": math.nan,
                    "p50": math.nan, "p90": math.nan, "max": math.nan}
        total = float(sum(self._values))
        return {
            "count": len(self._values),
            "sum": total,
            "mean": total / len(self._values),
            "min": min(self._values),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "max": max(self._values),
        }

    def as_record(self) -> dict:
        return {
            "kind": "metric",
            "type": "histogram",
            "name": self.name,
            "summary": self.summary(),
            "values": list(self._values),
        }


class TimeSeries:
    """Append-only rows of ``(time, *columns)`` with rollback-friendly trims.

    Backs epoch-resolution simulation timelines (pool occupancy, port
    utilisation).  Unlike the other instruments a timeseries always records:
    its contents are simulation output, not optional observability.
    """

    __slots__ = ("name", "columns", "times", "_columns")

    def __init__(self, name: str, columns: Iterable[str]) -> None:
        self.name = name
        self.columns = tuple(columns)
        if not self.columns:
            raise ValueError(f"timeseries {name!r} needs at least one column")
        self.times: list[float] = []
        self._columns: dict[str, list] = {c: [] for c in self.columns}

    def __len__(self) -> int:
        return len(self.times)

    @property
    def last_time(self) -> Optional[float]:
        return self.times[-1] if self.times else None

    def append(self, time: float, **values) -> None:
        if set(values) != set(self.columns):
            raise ValueError(
                f"timeseries {self.name!r} expects columns {self.columns}, "
                f"got {tuple(sorted(values))}"
            )
        self.times.append(float(time))
        for column, value in values.items():
            self._columns[column].append(value)

    def column(self, name: str) -> list:
        return self._columns[name]

    def drop_last(self) -> None:
        """Remove the most recent row (no-op when empty)."""
        if self.times:
            self.times.pop()
            for values in self._columns.values():
                values.pop()

    def trim_after(self, time: float, slack: float = 1e-12) -> None:
        """Drop every row recorded strictly after ``time`` (checkpoint rollback)."""
        while self.times and self.times[-1] > time + slack:
            self.drop_last()

    def series(self) -> dict:
        """All rows as plain column arrays, times under ``"time"``."""
        out: dict = {"time": list(self.times)}
        for column in self.columns:
            out[column] = list(self._columns[column])
        return out

    def as_record(self) -> dict:
        return {
            "kind": "metric",
            "type": "timeseries",
            "name": self.name,
            "columns": list(self.columns),
            "series": self.series(),
        }


class MetricsRegistry:
    """Named instruments, get-or-create, one namespace per registry."""

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, cls, *args) -> object:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, *args)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get(name, Counter, description)  # type: ignore[return-value]

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get(name, Gauge, description)  # type: ignore[return-value]

    def histogram(self, name: str, description: str = "") -> Histogram:
        return self._get(name, Histogram, description)  # type: ignore[return-value]

    def timeseries(self, name: str, columns: Iterable[str]) -> TimeSeries:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = TimeSeries(name, columns)
            self._instruments[name] = instrument
        elif not isinstance(instrument, TimeSeries):
            raise TypeError(
                f"metric {name!r} is already registered as "
                f"{type(instrument).__name__}, not TimeSeries"
            )
        return instrument

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def get(self, name: str):
        """The instrument registered under ``name`` (None when absent)."""
        return self._instruments.get(name)

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._instruments))

    def reset(self) -> None:
        """Drop every instrument (a fresh namespace for the next run)."""
        self._instruments.clear()

    def snapshot(self) -> dict:
        """All instruments as plain-data records, keyed by metric name."""
        return {
            name: self._instruments[name].as_record()  # type: ignore[attr-defined]
            for name in self.names()
        }

    def merge(self, snapshot: Mapping[str, Mapping]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The out-of-process aggregation primitive: a sweep worker snapshots
        its private registry, ships the plain-data dict across the process
        boundary, and the parent merges it here.  Semantics per instrument
        type:

        * **counter** — values add (work done elsewhere is still work done);
        * **gauge** — last write wins (the merged snapshot's value replaces
          the local one, in merge-call order);
        * **histogram** — observations append;
        * **timeseries** — rows append in snapshot order.

        Instruments missing locally are created; a name collision across
        instrument types raises ``TypeError`` exactly like local
        registration would.
        """
        for name in sorted(snapshot):
            self._merge_record(snapshot[name])

    def _merge_record(self, record: Mapping) -> None:
        """Fold one exported metric record into the registry."""
        if record.get("kind") != "metric":
            return
        kind = record["type"]
        name = record["name"]
        if kind == "counter":
            self.counter(name).inc(record["value"])
        elif kind == "gauge":
            self.gauge(name).set(record["value"])
        elif kind == "histogram":
            histogram = self.histogram(name)
            for value in record["values"]:
                histogram.observe(value)
        elif kind == "timeseries":
            columns = [c for c in record["columns"]]
            series = self.timeseries(name, columns)
            data = record["series"]
            for i, time in enumerate(data["time"]):
                series.append(time, **{c: data[c][i] for c in columns})
        else:
            raise ValueError(f"unknown metric type {kind!r} for {name!r}")

    # -- JSONL round trip -----------------------------------------------------------

    def write_jsonl(self, stream: IO[str]) -> int:
        """Write every instrument as one JSON line; returns lines written."""
        count = 0
        for name in self.names():
            record = self._instruments[name].as_record()  # type: ignore[attr-defined]
            stream.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
        return count

    @classmethod
    def from_records(cls, records: Iterable[Mapping]) -> "MetricsRegistry":
        """Rebuild a registry from exported metric records (JSONL round trip)."""
        registry = cls()
        for record in records:
            registry._merge_record(record)
        return registry


class _NoopInstrument:
    """Shared sink for every instrument call while telemetry is disabled."""

    __slots__ = ()
    name = "noop"
    description = ""
    value = 0.0
    count = 0
    values = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class NoopRegistry:
    """Registry stand-in whose instruments discard everything."""

    __slots__ = ()
    _NOOP = _NoopInstrument()

    def counter(self, name: str, description: str = "") -> _NoopInstrument:
        return self._NOOP

    def gauge(self, name: str, description: str = "") -> _NoopInstrument:
        return self._NOOP

    def histogram(self, name: str, description: str = "") -> _NoopInstrument:
        return self._NOOP
