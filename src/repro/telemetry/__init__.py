"""Unified metrics/tracing layer (``repro.telemetry``).

The observability surface of the whole simulation stack: a process-wide
:class:`MetricsRegistry` (counters, gauges, histograms, timeseries), span
tracing with monotonic wall-clock timing, JSONL export, and the report
renderer behind ``repro-dmem telemetry report``.

Telemetry is **disabled by default** and compiled down to a no-op fast path:
:func:`metrics` hands out a shared no-op registry and :func:`trace_span`
returns a shared no-op context manager, so instrumented hot paths (the
scheduler event loop, the fixed-point solver) pay one flag check per call
site.  ``tools/bench_perf.py`` measures that disabled-mode overhead and
records it in ``BENCH_cosim.json``.

Typical enablement (what the CLI's ``--telemetry``/``--trace-out`` flags do)::

    from repro import telemetry

    telemetry.enable(reset=True)      # fresh registry + tracer, recording on
    ...run the simulation...
    with open("run.jsonl", "w") as fh:
        telemetry.write_jsonl(fh)     # metrics + spans, schema-versioned
    telemetry.disable()

Metric names and the span taxonomy are catalogued in
``docs/observability.md``.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import IO, Optional

from .registry import (
    TELEMETRY_SCHEMA,
    TELEMETRY_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopRegistry,
    TimeSeries,
)
from .tracing import NOOP_SPAN, SpanRecord, Tracer

__all__ = [
    "TELEMETRY_SCHEMA",
    "TELEMETRY_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopRegistry",
    "SpanRecord",
    "TimeSeries",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "isolated",
    "metrics",
    "read_jsonl",
    "trace_span",
    "tracer",
    "write_jsonl",
]

_REGISTRY = MetricsRegistry()
_NOOP_REGISTRY = NoopRegistry()
_TRACER = Tracer()
_ENABLED = False


def enable(reset: bool = False) -> None:
    """Turn recording on; ``reset=True`` starts from an empty registry/tracer."""
    global _ENABLED
    if reset:
        _REGISTRY.reset()
        _TRACER.reset()
    _ENABLED = True


def disable() -> None:
    """Turn recording off (already-collected data stays readable)."""
    global _ENABLED
    _ENABLED = False


def enabled() -> bool:
    """Whether telemetry is currently recording."""
    return _ENABLED


def metrics():
    """The active metrics registry (a shared no-op registry while disabled)."""
    return _REGISTRY if _ENABLED else _NOOP_REGISTRY


def registry() -> MetricsRegistry:
    """The real process registry, regardless of the enabled flag (read side)."""
    return _REGISTRY


def tracer() -> Tracer:
    """The process tracer (read side; recording honours the enabled flag)."""
    return _TRACER


def trace_span(name: str, **attrs):
    """Open a span on the process tracer (shared no-op while disabled)."""
    if not _ENABLED:
        return NOOP_SPAN
    return _TRACER.span(name, **attrs)


@contextmanager
def isolated(record: Optional[bool] = None):
    """Run a block against a private, fresh registry and tracer.

    Swaps new instances in for the module globals for the duration of the
    block, yields the private :class:`MetricsRegistry`, and restores the
    previous registry, tracer and enabled flag afterwards — the collected
    data stays readable on the yielded object.

    This is the execution wrapper of the sweep engine
    (:mod:`repro.parallel`): every sweep task runs inside ``isolated(True)``
    whether it executes in a worker process or inline in the parent, so a
    serial run and a sharded run record into identically-scoped registries
    whose snapshots then :meth:`~MetricsRegistry.merge` into the parent —
    the keystone of the sharded-vs-serial bit-identity contract.

    ``record=None`` keeps the current enabled flag; True/False force it for
    the block.
    """
    global _REGISTRY, _TRACER, _ENABLED
    saved = (_REGISTRY, _TRACER, _ENABLED)
    _REGISTRY = MetricsRegistry()
    _TRACER = Tracer()
    if record is not None:
        _ENABLED = bool(record)
    try:
        yield _REGISTRY
    finally:
        _REGISTRY, _TRACER, _ENABLED = saved


# -- JSONL export / import -------------------------------------------------------------


def write_jsonl(
    stream: IO[str],
    registry_: Optional[MetricsRegistry] = None,
    tracer_: Optional[Tracer] = None,
) -> int:
    """Dump one run's telemetry (meta line, metrics, spans) as JSONL lines."""
    registry_ = registry_ if registry_ is not None else _REGISTRY
    tracer_ = tracer_ if tracer_ is not None else _TRACER
    meta = {
        "kind": "meta",
        "schema": TELEMETRY_SCHEMA,
        "version": TELEMETRY_SCHEMA_VERSION,
    }
    stream.write(json.dumps(meta, sort_keys=True) + "\n")
    lines = 1
    lines += registry_.write_jsonl(stream)
    lines += tracer_.write_jsonl(stream)
    return lines


class TelemetryDump:
    """A parsed telemetry JSONL file: meta + rebuilt registry + rebuilt tracer."""

    def __init__(self, meta: dict, registry_: MetricsRegistry, tracer_: Tracer) -> None:
        self.meta = meta
        self.registry = registry_
        self.tracer = tracer_


def read_jsonl(stream: IO[str]) -> TelemetryDump:
    """Parse a file produced by :func:`write_jsonl` (round-trip exact)."""
    records = [json.loads(line) for line in stream if line.strip()]
    meta = next((r for r in records if r.get("kind") == "meta"), {})
    if meta and meta.get("schema") != TELEMETRY_SCHEMA:
        raise ValueError(
            f"not a telemetry dump: schema {meta.get('schema')!r}, "
            f"expected {TELEMETRY_SCHEMA!r}"
        )
    return TelemetryDump(
        meta=meta,
        registry_=MetricsRegistry.from_records(records),
        tracer_=Tracer.from_records(records),
    )
