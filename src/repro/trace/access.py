"""Memory access stream containers.

The simulator exchanges memory accesses as :class:`AccessBatch` objects —
structure-of-arrays NumPy containers holding cacheline indices, read/write
flags and the originating data object.  Batches are cheap to concatenate,
slice and hand to the vectorised cache model, following the hpc-parallel
guideline of keeping hot paths in NumPy rather than per-element Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np


@dataclass
class AccessBatch:
    """A batch of cacheline-granularity memory accesses.

    Attributes
    ----------
    lines:
        Global cacheline indices (int64).  A cacheline index is the byte
        address divided by the cacheline size; the address-space layout is
        managed by the allocator.
    is_write:
        Boolean array marking store (read-for-ownership) accesses.
    object_ids:
        Integer id of the data object each access belongs to, or -1 when
        unknown.  Used to attribute traffic to allocation sites, mirroring the
        paper's profiler hook on allocation calls.
    weight:
        Each sampled access in this batch represents ``weight`` real accesses.
        Workload models sample their address streams; the weight scales the
        sample back up to the full traffic volume.
    """

    lines: np.ndarray
    is_write: np.ndarray
    object_ids: np.ndarray
    weight: float = 1.0

    def __post_init__(self) -> None:
        self.lines = np.asarray(self.lines, dtype=np.int64)
        self.is_write = np.asarray(self.is_write, dtype=bool)
        self.object_ids = np.asarray(self.object_ids, dtype=np.int64)
        if not (len(self.lines) == len(self.is_write) == len(self.object_ids)):
            raise ValueError("AccessBatch arrays must have equal length")
        if self.weight <= 0:
            raise ValueError("AccessBatch weight must be positive")

    # -- constructors --------------------------------------------------------

    @classmethod
    def empty(cls) -> "AccessBatch":
        """An empty batch."""
        z = np.empty(0, dtype=np.int64)
        return cls(lines=z, is_write=np.empty(0, dtype=bool), object_ids=z.copy())

    @classmethod
    def reads(cls, lines: np.ndarray, object_id: int = -1, weight: float = 1.0) -> "AccessBatch":
        """A batch of read accesses to ``lines`` from one object."""
        lines = np.asarray(lines, dtype=np.int64)
        return cls(
            lines=lines,
            is_write=np.zeros(len(lines), dtype=bool),
            object_ids=np.full(len(lines), object_id, dtype=np.int64),
            weight=weight,
        )

    @classmethod
    def writes(cls, lines: np.ndarray, object_id: int = -1, weight: float = 1.0) -> "AccessBatch":
        """A batch of write (RFO) accesses to ``lines`` from one object."""
        lines = np.asarray(lines, dtype=np.int64)
        return cls(
            lines=lines,
            is_write=np.ones(len(lines), dtype=bool),
            object_ids=np.full(len(lines), object_id, dtype=np.int64),
            weight=weight,
        )

    @classmethod
    def concat(cls, batches: Sequence["AccessBatch"]) -> "AccessBatch":
        """Concatenate batches that share the same weight.

        Raises ``ValueError`` if weights differ — callers should resample or
        keep batches separate in that case.
        """
        batches = [b for b in batches if len(b) > 0]
        if not batches:
            return cls.empty()
        weights = {b.weight for b in batches}
        if len(weights) != 1:
            raise ValueError("cannot concatenate batches with different weights")
        return cls(
            lines=np.concatenate([b.lines for b in batches]),
            is_write=np.concatenate([b.is_write for b in batches]),
            object_ids=np.concatenate([b.object_ids for b in batches]),
            weight=batches[0].weight,
        )

    # -- basic protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.lines)

    @property
    def n_reads(self) -> int:
        """Number of sampled read accesses."""
        return int((~self.is_write).sum())

    @property
    def n_writes(self) -> int:
        """Number of sampled write accesses."""
        return int(self.is_write.sum())

    @property
    def represented_accesses(self) -> float:
        """Total number of real accesses represented by this sample."""
        return len(self) * self.weight

    def bytes_represented(self, line_bytes: int) -> float:
        """Total bytes of traffic represented by this sample."""
        return self.represented_accesses * line_bytes

    def pages(self, lines_per_page: int) -> np.ndarray:
        """Page indices touched by each access."""
        return self.lines // int(lines_per_page)

    def unique_lines(self) -> np.ndarray:
        """Sorted unique cacheline indices in the batch."""
        return np.unique(self.lines)

    def subset(self, mask: np.ndarray) -> "AccessBatch":
        """A new batch containing only the accesses selected by ``mask``."""
        return AccessBatch(
            lines=self.lines[mask],
            is_write=self.is_write[mask],
            object_ids=self.object_ids[mask],
            weight=self.weight,
        )

    def interleave(self, other: "AccessBatch", rng: np.random.Generator) -> "AccessBatch":
        """Randomly interleave two equal-weight batches preserving each order.

        Used when a kernel touches several objects concurrently (e.g. a
        gather reading both an index array and a value array).
        """
        if self.weight != other.weight:
            raise ValueError("cannot interleave batches with different weights")
        n, m = len(self), len(other)
        if n == 0:
            return other
        if m == 0:
            return self
        positions = np.zeros(n + m, dtype=bool)
        positions[rng.choice(n + m, size=m, replace=False)] = True
        lines = np.empty(n + m, dtype=np.int64)
        is_write = np.empty(n + m, dtype=bool)
        object_ids = np.empty(n + m, dtype=np.int64)
        lines[~positions] = self.lines
        lines[positions] = other.lines
        is_write[~positions] = self.is_write
        is_write[positions] = other.is_write
        object_ids[~positions] = self.object_ids
        object_ids[positions] = other.object_ids
        return AccessBatch(lines=lines, is_write=is_write, object_ids=object_ids, weight=self.weight)


@dataclass
class PageAccessProfile:
    """Aggregated page-level access counts for one execution region.

    This is the representation behind the bandwidth-capacity scaling curves
    (Figure 6): how many accesses landed on each page of the footprint.
    """

    page_ids: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        self.page_ids = np.asarray(self.page_ids, dtype=np.int64)
        self.counts = np.asarray(self.counts, dtype=np.float64)
        if len(self.page_ids) != len(self.counts):
            raise ValueError("page_ids and counts must have equal length")
        if np.any(self.counts < 0):
            raise ValueError("access counts must be non-negative")

    @classmethod
    def from_batch(cls, batch: AccessBatch, lines_per_page: int) -> "PageAccessProfile":
        """Aggregate an access batch into per-page counts."""
        if len(batch) == 0:
            return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
        pages = batch.pages(lines_per_page)
        unique, counts = np.unique(pages, return_counts=True)
        return cls(unique, counts.astype(np.float64) * batch.weight)

    def merged(self, other: "PageAccessProfile") -> "PageAccessProfile":
        """Combine two profiles, summing counts of shared pages."""
        if len(self.page_ids) == 0:
            return other
        if len(other.page_ids) == 0:
            return self
        all_pages = np.concatenate([self.page_ids, other.page_ids])
        all_counts = np.concatenate([self.counts, other.counts])
        unique, inverse = np.unique(all_pages, return_inverse=True)
        summed = np.zeros(len(unique), dtype=np.float64)
        np.add.at(summed, inverse, all_counts)
        return PageAccessProfile(unique, summed)

    @property
    def total_accesses(self) -> float:
        """Total access count across all pages."""
        return float(self.counts.sum())

    @property
    def n_pages(self) -> int:
        """Number of distinct pages touched."""
        return len(self.page_ids)
