"""Memory access pattern generators.

A workload kernel's traffic to a data object is described by an
:class:`AccessPattern`.  Each pattern can

* generate an ordered sample of cacheline offsets inside an object, as the
  core would issue them (used by the cache and prefetcher simulator),
* produce per-page *hotness weights*, i.e. how the object's traffic is spread
  across its footprint (used by the bandwidth-capacity scaling curves and the
  tier-access analysis), and
* report its *stream fraction*, the share of accesses that belong to
  prefetcher-detectable sequential/strided streams (used by the analytical
  prefetch model when the sampled stream is too small to be representative).

Patterns are deterministic given a :class:`numpy.random.Generator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np


class AccessPattern(Protocol):
    """Protocol implemented by all access patterns."""

    #: Fraction of accesses that a stream prefetcher could cover (0..1).
    stream_fraction: float

    def sample_offsets(
        self, n_lines: int, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Ordered cacheline offsets (0 .. n_lines-1) as issued by the core."""
        ...

    def page_weights(self, n_pages: int, rng: np.random.Generator) -> np.ndarray:
        """Relative access weight of each page of the object (sums to 1)."""
        ...


def _normalise(weights: np.ndarray) -> np.ndarray:
    total = weights.sum()
    if total <= 0:
        return np.full(len(weights), 1.0 / max(len(weights), 1))
    return weights / total


@dataclass(frozen=True)
class SequentialPattern:
    """Unit-stride streaming over the whole object.

    Models dense array sweeps (STREAM, dense BLAS panels, stencil sweeps):
    all pages receive equal traffic and nearly every access is part of a
    prefetchable stream.
    """

    stream_fraction: float = 0.98

    def sample_offsets(
        self, n_lines: int, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        if n_lines <= 0 or n_samples <= 0:
            return np.empty(0, dtype=np.int64)
        if n_samples >= n_lines:
            reps = -(-n_samples // n_lines)
            offsets = np.tile(np.arange(n_lines, dtype=np.int64), reps)[:n_samples]
            return offsets
        # Sample a contiguous window starting at a random position so the
        # prefetcher sees an uninterrupted stream.
        start = int(rng.integers(0, n_lines - n_samples + 1))
        return np.arange(start, start + n_samples, dtype=np.int64)

    def page_weights(self, n_pages: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n_pages, 1.0 / max(n_pages, 1))


@dataclass(frozen=True)
class StridedPattern:
    """Fixed-stride access (e.g. column sweeps, structured-grid neighbours).

    A stride of ``stride_lines`` cachelines is still detectable by the
    hardware stride prefetcher, but larger strides waste part of each fetched
    line, which lowers the effective stream fraction.
    """

    stride_lines: int = 2
    stream_fraction: float = 0.9

    def __post_init__(self) -> None:
        if self.stride_lines < 1:
            raise ValueError("stride must be >= 1 cacheline")

    def sample_offsets(
        self, n_lines: int, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        if n_lines <= 0 or n_samples <= 0:
            return np.empty(0, dtype=np.int64)
        start = int(rng.integers(0, max(self.stride_lines, 1)))
        offsets = (start + np.arange(n_samples, dtype=np.int64) * self.stride_lines) % n_lines
        return offsets

    def page_weights(self, n_pages: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n_pages, 1.0 / max(n_pages, 1))


@dataclass(frozen=True)
class RandomPattern:
    """Uniformly random accesses over the object.

    Models hash-table probing and Monte-Carlo table lookups (XSBench's
    cross-section grid): no spatial locality, essentially nothing for the
    stream prefetcher to latch onto.
    """

    stream_fraction: float = 0.02

    def sample_offsets(
        self, n_lines: int, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        if n_lines <= 0 or n_samples <= 0:
            return np.empty(0, dtype=np.int64)
        return rng.integers(0, n_lines, size=n_samples, dtype=np.int64)

    def page_weights(self, n_pages: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n_pages, 1.0 / max(n_pages, 1))


@dataclass(frozen=True)
class ZipfPattern:
    """Power-law (Zipf) page popularity with random access order.

    Models irregular pointer-heavy structures whose hot set is much smaller
    than the footprint — graph frontiers, degree-skewed adjacency lists.  The
    ``alpha`` exponent controls the skew; higher values concentrate traffic on
    fewer pages (the paper observes BFS's curve shifting left as the graph
    grows — i.e. effective alpha increasing with scale).
    """

    alpha: float = 1.1
    stream_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("zipf alpha must be positive")

    def _rank_weights(self, n: int) -> np.ndarray:
        ranks = np.arange(1, n + 1, dtype=np.float64)
        return _normalise(ranks ** (-self.alpha))

    def sample_offsets(
        self, n_lines: int, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        if n_lines <= 0 or n_samples <= 0:
            return np.empty(0, dtype=np.int64)
        # Draw line popularity ranks from the zipf distribution, then scatter
        # ranks over line indices with a fixed permutation derived from rng.
        weights = self._rank_weights(min(n_lines, 1 << 16))
        ranks = rng.choice(len(weights), size=n_samples, p=weights)
        # Map ranks onto the full object with a multiplicative hash so hot
        # lines are spread across pages rather than clustered at offset 0.
        spread = (ranks.astype(np.int64) * 2654435761) % max(n_lines, 1)
        return spread

    def page_weights(self, n_pages: int, rng: np.random.Generator) -> np.ndarray:
        if n_pages <= 0:
            return np.empty(0, dtype=np.float64)
        weights = self._rank_weights(n_pages)
        # Shuffle so the hot pages are not physically contiguous -- matches the
        # paper's observation that hot data is interleaved through the heap.
        rng.shuffle(weights)
        return weights


@dataclass(frozen=True)
class HotColdPattern:
    """Two-population pattern: a hot fraction receives most of the traffic.

    Models allocations where only a small region is actively used (XSBench's
    grid where only sampled points are looked up, BFS's large but rarely
    touched graph construction buffers).  ``hot_fraction`` of the pages receive
    ``hot_traffic`` of the accesses.
    """

    hot_fraction: float = 0.1
    hot_traffic: float = 0.9
    stream_fraction: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0.0 <= self.hot_traffic <= 1.0:
            raise ValueError("hot_traffic must be in [0, 1]")

    def sample_offsets(
        self, n_lines: int, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        if n_lines <= 0 or n_samples <= 0:
            return np.empty(0, dtype=np.int64)
        hot_lines = max(int(round(n_lines * self.hot_fraction)), 1)
        hot_mask = rng.random(n_samples) < self.hot_traffic
        offsets = np.empty(n_samples, dtype=np.int64)
        n_hot = int(hot_mask.sum())
        offsets[hot_mask] = rng.integers(0, hot_lines, size=n_hot, dtype=np.int64)
        offsets[~hot_mask] = rng.integers(0, n_lines, size=n_samples - n_hot, dtype=np.int64)
        return offsets

    def page_weights(self, n_pages: int, rng: np.random.Generator) -> np.ndarray:
        if n_pages <= 0:
            return np.empty(0, dtype=np.float64)
        hot_pages = max(int(round(n_pages * self.hot_fraction)), 1)
        weights = np.full(n_pages, (1.0 - self.hot_traffic) / max(n_pages, 1))
        weights[:hot_pages] += self.hot_traffic / hot_pages
        return _normalise(weights)


@dataclass(frozen=True)
class BlockedPattern:
    """Blocked/tiled traversal: sequential within blocks, jumps between them.

    Models tiled dense linear algebra (HPL's panel updates) and sparse
    factorisation supernodes: most accesses stream inside a block so the
    prefetcher does well, but each block transition breaks the stream.
    """

    block_lines: int = 512
    stream_fraction: float = 0.85

    def __post_init__(self) -> None:
        if self.block_lines < 1:
            raise ValueError("block size must be >= 1 line")

    def sample_offsets(
        self, n_lines: int, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        if n_lines <= 0 or n_samples <= 0:
            return np.empty(0, dtype=np.int64)
        block = min(self.block_lines, n_lines)
        n_blocks_needed = -(-n_samples // block)
        max_start = max(n_lines - block, 0)
        starts = rng.integers(0, max_start + 1, size=n_blocks_needed, dtype=np.int64)
        within = np.arange(block, dtype=np.int64)
        offsets = (starts[:, None] + within[None, :]).reshape(-1)[:n_samples]
        return offsets

    def page_weights(self, n_pages: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n_pages, 1.0 / max(n_pages, 1))


@dataclass(frozen=True)
class GatherPattern:
    """Indexed gather: a streamed index array drives random value lookups.

    Models sparse matrix-vector products and Ligra's edge-map: the index
    stream itself is prefetchable, but the gathered values are not.  The
    ``indexed_fraction`` is the share of traffic going to the randomly
    addressed values.
    """

    indexed_fraction: float = 0.6
    skew_alpha: float = 0.8
    stream_fraction: float = 0.45

    def __post_init__(self) -> None:
        if not 0.0 <= self.indexed_fraction <= 1.0:
            raise ValueError("indexed_fraction must be in [0, 1]")
        if self.skew_alpha <= 0:
            raise ValueError("skew_alpha must be positive")

    def sample_offsets(
        self, n_lines: int, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        if n_lines <= 0 or n_samples <= 0:
            return np.empty(0, dtype=np.int64)
        n_indexed = int(round(n_samples * self.indexed_fraction))
        n_stream = n_samples - n_indexed
        stream = SequentialPattern().sample_offsets(n_lines, n_stream, rng)
        indexed = ZipfPattern(alpha=self.skew_alpha).sample_offsets(n_lines, n_indexed, rng)
        offsets = np.empty(n_samples, dtype=np.int64)
        # Interleave deterministically: place indexed accesses at evenly spread
        # positions so streams are broken the way a real gather breaks them.
        positions = np.zeros(n_samples, dtype=bool)
        if n_indexed > 0:
            idx = np.linspace(0, n_samples - 1, n_indexed).astype(np.int64)
            positions[idx] = True
        offsets[~positions] = stream[: int((~positions).sum())]
        offsets[positions] = indexed[: int(positions.sum())]
        return offsets

    def page_weights(self, n_pages: int, rng: np.random.Generator) -> np.ndarray:
        if n_pages <= 0:
            return np.empty(0, dtype=np.float64)
        uniform = np.full(n_pages, 1.0 / n_pages)
        skewed = ZipfPattern(alpha=self.skew_alpha).page_weights(n_pages, rng)
        return _normalise(
            (1.0 - self.indexed_fraction) * uniform + self.indexed_fraction * skewed
        )


#: Registry of pattern names usable from configuration files / CLI.
PATTERNS = {
    "sequential": SequentialPattern,
    "strided": StridedPattern,
    "random": RandomPattern,
    "zipf": ZipfPattern,
    "hotcold": HotColdPattern,
    "blocked": BlockedPattern,
    "gather": GatherPattern,
}


def make_pattern(name: str, **kwargs) -> AccessPattern:
    """Instantiate a pattern by registry name."""
    try:
        cls = PATTERNS[name]
    except KeyError as exc:
        raise ValueError(f"unknown access pattern {name!r}; known: {sorted(PATTERNS)}") from exc
    return cls(**kwargs)
