"""Memory access traces: batches, patterns and footprint distributions."""

from .access import AccessBatch, PageAccessProfile
from .footprint import (
    ScalingCurve,
    hot_page_order,
    scaling_curve_from_counts,
    scaling_curve_from_profile,
    working_set_pages,
)
from .patterns import (
    PATTERNS,
    AccessPattern,
    BlockedPattern,
    GatherPattern,
    HotColdPattern,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
    ZipfPattern,
    make_pattern,
)

__all__ = [
    "AccessBatch",
    "PageAccessProfile",
    "ScalingCurve",
    "hot_page_order",
    "scaling_curve_from_counts",
    "scaling_curve_from_profile",
    "working_set_pages",
    "PATTERNS",
    "AccessPattern",
    "BlockedPattern",
    "GatherPattern",
    "HotColdPattern",
    "RandomPattern",
    "SequentialPattern",
    "StridedPattern",
    "ZipfPattern",
    "make_pattern",
]
