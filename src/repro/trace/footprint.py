"""Footprint / access-distribution utilities.

These functions turn per-page access counts into the cumulative
access-vs-footprint curves the paper uses as "memory bandwidth-capacity
scaling curves" (Section 4.1, Figure 6): sort pages by access count in
descending order, then plot the cumulative share of accesses against the
share of the memory footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .access import PageAccessProfile


@dataclass(frozen=True)
class ScalingCurve:
    """A cumulative access distribution over the memory footprint.

    Attributes
    ----------
    footprint_pct:
        Monotonically increasing percentages of the memory footprint
        (hottest pages first), in [0, 100].
    access_pct:
        Cumulative percentage of memory accesses captured by that share of
        the footprint, in [0, 100].
    """

    footprint_pct: np.ndarray
    access_pct: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "footprint_pct", np.asarray(self.footprint_pct, dtype=np.float64))
        object.__setattr__(self, "access_pct", np.asarray(self.access_pct, dtype=np.float64))
        if len(self.footprint_pct) != len(self.access_pct):
            raise ValueError("curve arrays must have equal length")

    def access_share_at(self, footprint_share: float) -> float:
        """Fraction of accesses captured by the hottest ``footprint_share`` of pages.

        ``footprint_share`` is a fraction in [0, 1]; the return value is also
        a fraction in [0, 1].  Linear interpolation between curve points.
        """
        if len(self.footprint_pct) == 0:
            return 0.0
        pct = float(np.clip(footprint_share, 0.0, 1.0)) * 100.0
        return float(np.interp(pct, self.footprint_pct, self.access_pct)) / 100.0

    def footprint_share_for(self, access_share: float) -> float:
        """Smallest footprint fraction needed to capture ``access_share`` of accesses."""
        if len(self.footprint_pct) == 0:
            return 0.0
        target = float(np.clip(access_share, 0.0, 1.0)) * 100.0
        return float(np.interp(target, self.access_pct, self.footprint_pct)) / 100.0

    @property
    def skewness(self) -> float:
        """Gini-style skew of the access distribution in [0, 1].

        0 means perfectly uniform accesses across the footprint (HPL, Hypre);
        values near 1 mean a tiny hot set captures nearly all traffic
        (BFS, XSBench).  Computed as twice the area between the curve and the
        diagonal.
        """
        if len(self.footprint_pct) < 2:
            return 0.0
        x = self.footprint_pct / 100.0
        y = self.access_pct / 100.0
        area = float(np.trapezoid(y, x))
        return float(np.clip(2.0 * (area - 0.5), 0.0, 1.0))


def scaling_curve_from_counts(counts: np.ndarray, n_points: int = 101) -> ScalingCurve:
    """Build a scaling curve from raw per-page access counts.

    Pages are sorted by access count in descending order; the cumulative
    distribution of accesses is then resampled onto ``n_points`` evenly spaced
    footprint percentages so curves of different footprint sizes can be
    overlaid (as in Figure 6).
    """
    counts = np.asarray(counts, dtype=np.float64)
    counts = counts[counts >= 0]
    if len(counts) == 0 or counts.sum() <= 0:
        pct = np.linspace(0.0, 100.0, n_points)
        return ScalingCurve(pct, pct.copy())
    ordered = np.sort(counts)[::-1]
    cum_access = np.concatenate([[0.0], np.cumsum(ordered)]) / ordered.sum() * 100.0
    cum_footprint = np.linspace(0.0, 100.0, len(ordered) + 1)
    pct = np.linspace(0.0, 100.0, n_points)
    access = np.interp(pct, cum_footprint, cum_access)
    return ScalingCurve(pct, access)


def scaling_curve_from_profile(profile: PageAccessProfile, n_points: int = 101) -> ScalingCurve:
    """Build a scaling curve from a :class:`PageAccessProfile`."""
    return scaling_curve_from_counts(profile.counts, n_points=n_points)


def hot_page_order(profile: PageAccessProfile) -> np.ndarray:
    """Page ids ordered from hottest to coldest."""
    if profile.n_pages == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(profile.counts)[::-1]
    return profile.page_ids[order]


def working_set_pages(profile: PageAccessProfile, access_share: float = 0.9) -> int:
    """Number of hottest pages that capture ``access_share`` of all accesses."""
    if profile.n_pages == 0:
        return 0
    ordered = np.sort(profile.counts)[::-1]
    cum = np.cumsum(ordered)
    target = access_share * cum[-1]
    return int(np.searchsorted(cum, target) + 1)
