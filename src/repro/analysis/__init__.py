"""Figure and table builders regenerating every experiment of the paper."""

from .figures import (
    figure1_memory_evolution,
    figure5_roofline,
    figure6_scaling_curves,
    figure7_prefetch_timeline,
    figure8_prefetch_metrics,
    figure9_tier_access,
    figure10_sensitivity,
    figure11_lbench,
    figure12_bfs_case_study,
    figure13_scheduling,
    figure_blast_radius,
    figure_fabric_pool_timeline,
)
from .report import ALL_EXPERIMENTS, ReportSection, measured_report
from .tables import format_table, table1_memory_cost, table2_workloads

__all__ = [
    "figure1_memory_evolution",
    "figure5_roofline",
    "figure6_scaling_curves",
    "figure7_prefetch_timeline",
    "figure8_prefetch_metrics",
    "figure9_tier_access",
    "figure10_sensitivity",
    "figure11_lbench",
    "figure12_bfs_case_study",
    "figure13_scheduling",
    "figure_blast_radius",
    "figure_fabric_pool_timeline",
    "ALL_EXPERIMENTS",
    "ReportSection",
    "measured_report",
    "format_table",
    "table1_memory_cost",
    "table2_workloads",
]
