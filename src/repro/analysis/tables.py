"""Table builders: regenerate the rows of the paper's tables."""

from __future__ import annotations

from ..data.top500 import top10_systems
from ..models.cost import MemoryPriceModel
from ..workloads.registry import all_models, table2_rows


def table1_memory_cost(prices: MemoryPriceModel | None = None) -> list[dict]:
    """Table 1: memory configuration and estimated cost of the Top-10 systems."""
    prices = prices if prices is not None else MemoryPriceModel()
    rows = []
    for system in top10_systems():
        hbm_low, hbm_high = (0.0, 0.0)
        if system.hbm_gb_per_node:
            hbm_low, hbm_high = prices.hbm_cost(system.hbm_gb_per_node, system.nodes)
        rows.append(
            {
                "rank": system.rank,
                "system": system.name,
                "ddr_gb_per_node": system.ddr_gb_per_node,
                "hbm_gb_per_node": system.hbm_gb_per_node,
                "hbm_bandwidth_tbs_per_node": system.hbm_bandwidth_tbs_per_node,
                "nodes": system.nodes,
                "est_ddr_cost_musd": system.estimated_ddr_cost(prices) / 1e6,
                "est_hbm_cost_musd_low": hbm_low / 1e6,
                "est_hbm_cost_musd_high": hbm_high / 1e6,
                "est_hbm_cost_musd_mid": system.estimated_hbm_cost(prices) / 1e6,
                "multi_tier": system.has_multi_tier_memory,
            }
        )
    return rows


def table2_workloads() -> list[dict]:
    """Table 2: the evaluated workloads, their inputs and memory footprints."""
    rows = table2_rows()
    # Extend the paper's columns with the modelled footprints (1:2:4 check).
    for row, model in zip(rows, all_models()):
        footprints = [model.build(scale).footprint_bytes for scale in model.input_scales]
        row["footprints_gb"] = [round(f / 1e9, 2) for f in footprints]
        row["footprint_ratio"] = [round(f / footprints[0], 2) for f in footprints]
    return rows


def format_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render rows as a plain-text table (used by the CLI and benchmarks)."""
    if not rows:
        return "(empty table)"
    columns = columns if columns is not None else list(rows[0].keys())
    rendered_rows = []
    for row in rows:
        rendered_rows.append([_fmt(row.get(col)) for col in columns])
    widths = [
        max(len(col), *(len(r[i]) for r in rendered_rows)) for i, col in enumerate(columns)
    ]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rendered_rows
    )
    return f"{header}\n{separator}\n{body}"


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3g}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)
