"""Experiment report generation.

:func:`measured_report` runs (a configurable subset of) the paper's
experiments and renders the measured headline numbers as a Markdown document —
the same quantities EXPERIMENTS.md tracks, regenerated from the current code
so users can diff their own runs against the committed reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from . import figures, tables


#: Experiment identifiers understood by :func:`measured_report`.
ALL_EXPERIMENTS: tuple[str, ...] = (
    "table1",
    "table2",
    "figure6",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
)


@dataclass(frozen=True)
class ReportSection:
    """One rendered section of the measured-results report."""

    experiment: str
    title: str
    body: str

    def as_markdown(self) -> str:
        """The section as a Markdown fragment."""
        return f"## {self.title}\n\n{self.body.strip()}\n"


def _pct(value: float) -> str:
    return f"{value:.1%}"


def _section_table1() -> ReportSection:
    rows = tables.table1_memory_cost()
    lines = ["| system | DDR GB/node | HBM GB/node | nodes | est. DDR M$ | est. HBM M$ (mid) |",
             "|---|---|---|---|---|---|"]
    for row in rows:
        lines.append(
            f"| {row['system']} | {row['ddr_gb_per_node'] or '-'} | {row['hbm_gb_per_node'] or '-'} | "
            f"{row['nodes']} | {row['est_ddr_cost_musd']:.1f} | {row['est_hbm_cost_musd_mid']:.1f} |"
        )
    return ReportSection("table1", "Table 1 — Top-10 memory configuration and cost", "\n".join(lines))


def _section_table2() -> ReportSection:
    rows = tables.table2_workloads()
    lines = ["| application | inputs | footprints (GB) |", "|---|---|---|"]
    for row in rows:
        lines.append(
            f"| {row['application']} | {row['input_problems']} | "
            f"{', '.join(str(f) for f in row['footprints_gb'])} |"
        )
    return ReportSection("table2", "Table 2 — evaluated workloads", "\n".join(lines))


def _section_figure6(seed: int) -> ReportSection:
    panels = figures.figure6_scaling_curves(seed=seed)
    lines = ["Skewness of the access distribution (0 = uniform, 1 = extreme):", ""]
    for workload, curves in panels.items():
        skews = ", ".join(f"{label}: {curve['skewness']:.2f}" for label, curve in curves.items())
        lines.append(f"* **{workload}** — {skews}")
    return ReportSection("figure6", "Figure 6 — bandwidth-capacity scaling curves", "\n".join(lines))


def _section_figure8(seed: int) -> ReportSection:
    rows = figures.figure8_prefetch_metrics(seed=seed)
    lines = ["| workload | accuracy | coverage | excess traffic | performance gain |",
             "|---|---|---|---|---|"]
    for name, row in rows.items():
        lines.append(
            f"| {name} | {_pct(row['accuracy'])} | {_pct(row['coverage'])} | "
            f"{_pct(row['excess_traffic'])} | {_pct(row['performance_gain'])} |"
        )
    return ReportSection("figure8", "Figure 8 — prefetching suitability", "\n".join(lines))


def _section_figure9(seed: int) -> ReportSection:
    panels = figures.figure9_tier_access(seed=seed)
    lines = []
    for label, panel in panels.items():
        lines.append(
            f"**{label}** (R_cap = {_pct(panel['capacity_ratio'])}, "
            f"R_BW = {_pct(panel['bandwidth_ratio'])}): "
            + ", ".join(
                f"{row['label']} {_pct(row['remote_access_ratio'])}" for row in panel["phases"]
            )
        )
        lines.append("")
    return ReportSection("figure9", "Figure 9 — remote access ratios", "\n".join(lines))


def _section_figure10(seed: int) -> ReportSection:
    panels = figures.figure10_sensitivity(seed=seed)
    lines = ["Maximum performance loss at LoI = 50:", ""]
    for label, rows in panels.items():
        lines.append(
            f"* **{label}** — "
            + ", ".join(f"{name}: {_pct(series['max_loss'])}" for name, series in rows.items())
        )
    return ReportSection("figure10", "Figure 10 — interference sensitivity", "\n".join(lines))


def _section_figure11(seed: int) -> ReportSection:
    data = figures.figure11_lbench(seed=seed)
    ic = data["application_ic"]
    middle = data["contention_curve"]
    lines = [
        "Interference coefficients (50% pooling): "
        + ", ".join(
            f"{name}: {row['interference_coefficient']:.2f}" for name, row in ic.items()
        ),
        "",
        "LBench IC / PCM traffic vs background intensity: "
        + ", ".join(
            f"{int(p['flops_per_element'])} flops -> IC {p['interference_coefficient']:.2f}, "
            f"{p['pcm_traffic'] / 1e9:.0f} GB/s"
            for p in middle
        ),
    ]
    return ReportSection("figure11", "Figure 11 — LBench validation and ICs", "\n".join(lines))


def _section_figure12(seed: int) -> ReportSection:
    data = figures.figure12_bfs_case_study(seed=seed, with_sensitivity=False)
    lines = ["| variant | config | runtime (s) | remote access |", "|---|---|---|---|"]
    for row in data["rows"]:
        lines.append(
            f"| {row['variant']} | {row['config']} | {row['runtime_s']:.1f} | "
            f"{_pct(row['remote_access_ratio'])} |"
        )
    return ReportSection("figure12", "Figure 12 — BFS placement case study", "\n".join(lines))


def _section_figure13(seed: int, n_runs: int) -> ReportSection:
    data = figures.figure13_scheduling(seed=seed, n_runs=n_runs)
    lines = ["| workload | mean speedup | p75 reduction |", "|---|---|---|"]
    for name, summary in data["per_workload"].items():
        lines.append(
            f"| {name} | {_pct(summary['mean_speedup'])} | {_pct(summary['p75_reduction'])} |"
        )
    return ReportSection("figure13", "Figure 13 — interference-aware scheduling", "\n".join(lines))


def measured_report(
    experiments: Sequence[str] = ALL_EXPERIMENTS,
    seed: int = 0,
    scheduling_runs: int = 100,
) -> str:
    """Render the measured results of the selected experiments as Markdown."""
    unknown = set(experiments) - set(ALL_EXPERIMENTS)
    if unknown:
        raise ValueError(f"unknown experiments: {sorted(unknown)}; known: {ALL_EXPERIMENTS}")
    builders = {
        "table1": lambda: _section_table1(),
        "table2": lambda: _section_table2(),
        "figure6": lambda: _section_figure6(seed),
        "figure8": lambda: _section_figure8(seed),
        "figure9": lambda: _section_figure9(seed),
        "figure10": lambda: _section_figure10(seed),
        "figure11": lambda: _section_figure11(seed),
        "figure12": lambda: _section_figure12(seed),
        "figure13": lambda: _section_figure13(seed, scheduling_runs),
    }
    sections = [builders[name]() for name in experiments]
    header = (
        "# Measured results\n\n"
        "Regenerated by `repro.analysis.report.measured_report()`; compare against "
        "EXPERIMENTS.md for the paper-reported values and the deviation notes.\n"
    )
    return header + "\n" + "\n".join(section.as_markdown() for section in sections)
