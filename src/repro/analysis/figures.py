"""Figure builders: regenerate the data series behind every figure of the paper.

Each function returns plain Python/NumPy data structures (dictionaries of
series) rather than rendering plots, so the benchmarks can print the same
rows/series the paper reports and users can plot them with any tool.  The
mapping from figure number to builder is listed in DESIGN.md.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..casestudies.bfs_placement import BFSPlacementCaseStudy
from ..casestudies.scheduling import SchedulingCaseStudy
from ..data.top500 import memory_evolution
from ..models.roofline import RooflinePoint, roofline_series
from ..profiler.level1 import Level1Profiler
from ..profiler.level2 import Level2Profiler
from ..profiler.level3 import Level3Profiler
from ..sim.platform import Platform
from ..workloads.lbench import LBench
from ..workloads.registry import all_models, build_all, get_model


def figure1_memory_evolution() -> dict:
    """Figure 1: evolution of memory capacity/bandwidth of top supercomputers."""
    points = memory_evolution()
    return {
        "years": [p.year for p in points],
        "systems": [p.system for p in points],
        "memory_gb_per_node": [p.memory_gb_per_node for p in points],
        "bandwidth_gbs_per_node": [p.memory_bandwidth_gbs_per_node for p in points],
        "bandwidth_per_core_gbs": [p.bandwidth_per_core_gbs for p in points],
        "capacity_per_core_gb": [p.capacity_per_core_gb for p in points],
    }


def figure5_roofline(scale: float = 1.0, seed: int = 0) -> dict:
    """Figure 5: roofline with the per-phase AI/throughput of every workload."""
    profiler = Level1Profiler(seed=seed)
    points: list[RooflinePoint] = []
    for spec in build_all(scale):
        profile = profiler.profile(spec)
        for label, intensity, gflops in profile.phase_points():
            points.append(RooflinePoint(label=label, arithmetic_intensity=intensity, gflops=gflops))
    return roofline_series(points)


def figure6_scaling_curves(seed: int = 0, n_points: int = 101) -> dict:
    """Figure 6: bandwidth-capacity scaling curves, 6 workloads x 3 input scales."""
    profiler = Level1Profiler(seed=seed)
    panels = {}
    for model in all_models():
        curves = profiler.scaling_curves(model.inputs())
        panels[model.name] = {
            label: {
                "footprint_pct": curve.footprint_pct,
                "access_pct": curve.access_pct,
                "skewness": curve.skewness,
            }
            for label, curve in curves.items()
        }
    return panels


def figure7_prefetch_timeline(
    workloads: Sequence[str] = ("NekRS", "HPL", "XSBench"),
    scale: float = 1.0,
    steps_per_phase: int = 40,
    seed: int = 0,
) -> dict:
    """Figure 7: L2 cacheline timeline with and without prefetching."""
    profiler = Level1Profiler(seed=seed)
    panels = {}
    for name in workloads:
        spec = get_model(name).build(scale)
        timelines = profiler.prefetch_timeline(spec, steps_per_phase=steps_per_phase)
        panels[name] = {
            label: {"time": times, "l2_lines": lines}
            for label, (times, lines) in timelines.items()
        }
    return panels


def figure8_prefetch_metrics(scale: float = 1.0, seed: int = 0) -> dict:
    """Figure 8: prefetch accuracy, coverage, excess traffic and performance gain."""
    profiler = Level1Profiler(seed=seed)
    rows = {}
    for spec in build_all(scale):
        report = profiler.profile(spec).prefetch
        rows[spec.name] = {
            "accuracy": report.accuracy,
            "coverage": report.coverage,
            "excess_traffic": report.excess_traffic,
            "performance_gain": report.performance_gain,
        }
    return rows


def figure9_tier_access(
    local_fractions: Sequence[float] = (0.75, 0.50, 0.25),
    scale: float = 1.0,
    seed: int = 0,
) -> dict:
    """Figure 9: remote access ratio per phase on the three capacity-ratio systems."""
    profiler = Level2Profiler(seed=seed)
    panels = {}
    for fraction in local_fractions:
        label = f"{int(round(fraction * 100))}-{int(round((1 - fraction) * 100))}"
        rows = []
        capacity_ratio = None
        bandwidth_ratio = None
        for spec in build_all(scale):
            platform = Platform.pooled(spec.footprint_bytes, fraction)
            profile = profiler.profile(spec, platform)
            capacity_ratio = profile.remote_capacity_ratio
            bandwidth_ratio = profile.remote_bandwidth_ratio
            for phase in profile.phases:
                rows.append(
                    {
                        "label": phase.label,
                        "remote_access_ratio": phase.remote_access_ratio,
                        "arithmetic_intensity": phase.arithmetic_intensity,
                    }
                )
        panels[label] = {
            "capacity_ratio": capacity_ratio,
            "bandwidth_ratio": bandwidth_ratio,
            "phases": rows,
        }
    return panels


def figure10_sensitivity(
    local_fractions: Sequence[float] = (0.75, 0.50, 0.25),
    loi_levels: Sequence[float] = (0.0, 10.0, 20.0, 30.0, 40.0, 50.0),
    scale: float = 1.0,
    seed: int = 0,
) -> dict:
    """Figure 10: relative performance under interference on the three systems."""
    profiler = Level3Profiler(seed=seed)
    panels = {}
    for fraction in local_fractions:
        label = f"{int(round(fraction * 100))}-{int(round((1 - fraction) * 100))}"
        rows = {}
        for spec in build_all(scale):
            platform = Platform.pooled(spec.footprint_bytes, fraction)
            curve = profiler.sensitivity(spec, platform, loi_levels)
            rows[spec.name] = {
                "loi": list(curve.loi_levels),
                "relative_performance": list(curve.relative_performance),
                "max_loss": curve.max_performance_loss,
            }
        panels[label] = rows
    return panels


def figure11_lbench(
    scale: float = 1.0,
    seed: int = 0,
    intensities: Sequence[float] = (10, 20, 30, 40, 50),
    background_flops: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    local_fraction: float = 0.50,
) -> dict:
    """Figure 11: LBench validation and per-application interference coefficients.

    Left panel: measured LoI versus configured intensity (1 and 2 threads).
    Middle panel: interference coefficient and PCM traffic versus the
    background kernel intensity.  Right panel: IC per application on the 50%
    pooling setup.
    """
    lbench = LBench()
    left = {
        f"{threads}-threads": [
            {"configured": intensity, "measured": m.loi}
            for intensity, m in zip(intensities, lbench.intensity_sweep(intensities, threads))
        ]
        for threads in (1, 2)
    }
    middle = lbench.contention_curve(list(background_flops))
    profiler = Level3Profiler(seed=seed)
    reports = profiler.interference_coefficients(build_all(scale), local_fraction)
    right = {
        name: {
            "interference_coefficient": report.interference_coefficient,
            "phase_coefficients": dict(report.phase_interference_coefficients),
        }
        for name, report in reports.items()
    }
    return {"loi_scaling": left, "contention_curve": middle, "application_ic": right,
            "loi_calibration": lbench.calibrate_loi(intensities)}


def figure12_bfs_case_study(
    scale: float = 1.0,
    pool_fractions: Sequence[float] = (0.50, 0.75),
    seed: int = 0,
    with_sensitivity: bool = True,
) -> dict:
    """Figure 12: the BFS data-placement optimisation case study."""
    study = BFSPlacementCaseStudy(scale=scale, seed=seed)
    result = study.run(pool_fractions=pool_fractions, with_sensitivity=with_sensitivity)
    summary = {
        "rows": result.summary_rows(),
        "speedups": {},
        "remote_reduction": {},
    }
    for pooled in pool_fractions:
        label = f"{int(round(pooled * 100))}%-pooled"
        summary["speedups"][label] = {
            "reordered": result.speedup(label, "reordered"),
            "optimized": result.speedup(label, "optimized"),
        }
        summary["remote_reduction"][label] = {
            "reordered": result.remote_access_reduction(label, "reordered"),
            "optimized": result.remote_access_reduction(label, "optimized"),
        }
    return summary


def figure_fabric_pool_timeline(
    n_tenants: int = 4,
    workload: str = "Hypre",
    scale: float = 1.0,
    local_fraction: float = 0.50,
    pool_capacity_bytes: Optional[int] = None,
    n_ports: int = 1,
    stagger: float = 0.0,
    seed: int = 0,
    n_racks: int = 1,
    cluster_pool_bytes: Optional[int] = None,
    solver: str = "vectorized",
) -> dict:
    """Pool-telemetry timeline of a rack co-simulation (fabric extension).

    Not a figure of the paper: it visualises the Section 7.2 extension the
    :mod:`repro.fabric` subsystem implements — leased pool capacity, admission
    queue depth and pool-port utilisation over time while ``n_tenants``
    instances of ``workload`` share one rack, plus each tenant's emergent
    background-interference timeline.

    With ``n_racks > 1`` the same view is produced per rack from the
    :class:`~repro.fabric.cluster.ClusterCoSimulator` (``n_tenants`` tenants
    in *every* rack, ``rack<i>-`` name prefixes): ``timeline`` then maps rack
    labels to series, and spilled tenants' spine contention shows up in their
    background-LoI timelines because rack co-simulators fold external offsets
    into the frozen backgrounds.
    """
    from ..fabric import (
        DynamicInterference,
        FabricTopology,
        MemoryPool,
        RackCoSimulator,
        uniform_tenants,
    )
    from ..workloads.registry import get_model

    spec = get_model(workload).build(scale)
    tenants = uniform_tenants(
        spec, n_tenants, local_fraction=local_fraction, stagger=stagger
    )
    if n_racks > 1:
        from dataclasses import replace as _replace

        from ..fabric import ClusterCoSimulator, ClusterFabric

        fabric = ClusterFabric(
            n_racks=n_racks, nodes_per_rack=n_tenants, n_ports=n_ports, solver=solver
        )
        simulator = ClusterCoSimulator(
            fabric,
            rack_pool_bytes=pool_capacity_bytes,
            cluster_pool_bytes=cluster_pool_bytes,
            seed=seed,
        )
        admissions = sorted(
            (
                (t.arrival, rack, _replace(t, name=f"rack{rack}-{t.name}"))
                for rack in range(n_racks)
                for t in tenants
            ),
            key=lambda item: item[0],
        )
        for arrival, rack, tenant in admissions:
            simulator.admit(rack, tenant, time=arrival)
        # Step to completion *without* withdrawing, so the per-tenant
        # background histories are still attached to the rack simulators.
        for _ in range(ClusterCoSimulator.MAX_EPOCHS):
            states = [
                state
                for sim in simulator.rack_sims
                for state in sim.tenant_states.values()
            ]
            if all(state.finished for state in states):
                break
            if not any(state.running for state in states):
                break
            simulator.step(simulator.horizon())
        backgrounds = {}
        for sim in simulator.rack_sims:
            for name, state in sim.tenant_states.items():
                if not state.background_times:
                    continue
                times, lois = DynamicInterference(
                    state.background_times,
                    state.background_bandwidths,
                    link=sim.topology.link_of(state.node),
                ).loi_timeline()
                backgrounds[name] = {"time": list(times), "loi": list(lois)}
        timelines = {
            f"rack{rack}": sim.telemetry.series()
            for rack, sim in enumerate(simulator.rack_sims)
        }
        return {
            "timeline": timelines,
            "tenant_background_loi": backgrounds,
            "summary": simulator.run_to_completion(),
        }
    pool = (
        MemoryPool(pool_capacity_bytes) if pool_capacity_bytes is not None else None
    )
    topology = FabricTopology(n_nodes=n_tenants, n_ports=n_ports, solver=solver)
    result = RackCoSimulator(tenants, pool=pool, topology=topology, seed=seed).run()
    backgrounds = {}
    for outcome in result.finished_tenants:
        times, lois = result.interference_for(outcome.name).loi_timeline()
        backgrounds[outcome.name] = {"time": list(times), "loi": list(lois)}
    return {
        "timeline": result.telemetry.series(),
        "tenant_background_loi": backgrounds,
        "summary": result.summary(),
    }


def figure_blast_radius(
    n_tenants: int = 4,
    workload: str = "Hypre",
    scale: float = 1.0,
    local_fraction: float = 0.50,
    pool_capacity_bytes: Optional[int] = None,
    n_ports: int = 1,
    stagger: float = 0.0,
    seed: int = 0,
    faults: Optional[Sequence] = None,
    fault_seed: Optional[int] = None,
    n_fault_events: int = 4,
    drain_bytes_per_s: Optional[float] = None,
    overcommit: bool = False,
) -> dict:
    """Blast radius of injected fabric faults (chaos study, fabric extension).

    Runs the same rack co-simulation as :func:`figure_fabric_pool_timeline`
    twice — once fault-free, once with a :class:`~repro.fabric.faults.
    FaultSchedule` — and reports the damage side by side: per-tenant stall
    seconds, revocations, re-admission latencies and migrated bytes
    (``blast_radius``), the faulted pool/port timeline, and the makespan and
    slowdown deltas against the clean baseline.  ``faults`` takes explicit
    :class:`~repro.fabric.faults.FaultEvent`\\ s (or CLI-style spec strings,
    see :func:`~repro.fabric.faults.parse_fault_spec`); alternatively
    ``fault_seed`` draws ``n_fault_events`` seeded stochastic port faults
    over the baseline makespan.  Both paths are fully deterministic given
    their arguments — see ``docs/failure_model.md``.
    """
    from ..fabric import (
        FabricTopology,
        FaultSchedule,
        MemoryPool,
        RackCoSimulator,
        parse_fault_spec,
        uniform_tenants,
    )
    from ..workloads.registry import get_model

    spec = get_model(workload).build(scale)
    tenants = uniform_tenants(
        spec, n_tenants, local_fraction=local_fraction, stagger=stagger
    )

    def make_pool() -> Optional[MemoryPool]:
        if pool_capacity_bytes is None and not overcommit:
            return None
        capacity = (
            pool_capacity_bytes
            if pool_capacity_bytes is not None
            else sum(max(t.lease_bytes, 1) for t in tenants)
        )
        return MemoryPool(capacity, elastic=overcommit)

    def make_sim() -> RackCoSimulator:
        return RackCoSimulator(
            tenants,
            pool=make_pool(),
            topology=FabricTopology(n_nodes=n_tenants, n_ports=n_ports),
            seed=seed,
        )

    baseline = RackCoSimulator(
        tenants,
        pool=(
            MemoryPool(pool_capacity_bytes)
            if pool_capacity_bytes is not None
            else None
        ),
        topology=FabricTopology(n_nodes=n_tenants, n_ports=n_ports),
        seed=seed,
    ).run()

    if faults is not None:
        events = [
            parse_fault_spec(f) if isinstance(f, str) else f for f in faults
        ]
        schedule = FaultSchedule(events)
    elif fault_seed is not None:
        schedule = FaultSchedule.seeded(
            seed=fault_seed,
            horizon=baseline.makespan,
            n_events=n_fault_events,
            n_ports=n_ports,
        )
    else:
        schedule = FaultSchedule([])

    sim = make_sim()
    sim.inject_faults(schedule, drain_bytes_per_s=drain_bytes_per_s)
    faulted = sim.run()
    report = faulted.blast_radius
    return {
        "schedule": [
            {
                "time": e.time,
                "kind": e.kind,
                "port": e.port,
                "tenant": e.tenant,
                "scale": e.scale,
                "nbytes": e.nbytes,
            }
            for e in schedule.events
        ],
        "baseline": {
            "makespan": baseline.makespan,
            "mean_slowdown": baseline.mean_slowdown,
        },
        "faulted": {
            "makespan": faulted.makespan,
            "mean_slowdown": faulted.mean_slowdown,
        },
        "makespan_delta": faulted.makespan - baseline.makespan,
        "blast_radius": report.summary() if report is not None else None,
        "timeline": faulted.telemetry.series(),
        "summary": faulted.summary(),
    }


def figure13_scheduling(
    scale: float = 1.0,
    n_runs: int = 100,
    local_fraction: float = 0.50,
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
) -> dict:
    """Figure 13: execution-time distributions, random vs interference-aware."""
    study = SchedulingCaseStudy(local_fraction=local_fraction, n_runs=n_runs, seed=seed)
    specs = None
    if workloads is not None:
        specs = [get_model(name).build(scale) for name in workloads]
    else:
        specs = build_all(scale)
    result = study.run(specs)
    return {
        "per_workload": {r.workload: r.summary() for r in result.results},
        "mean_speedups": result.speedups(),
        "most_improved": result.most_improved(),
    }
