"""Analytical interference-sensitivity model.

Section 6.1 of the paper summarises its empirical finding as: *"An
application's sensitivity to memory interference on memory pooling is caused
by its remote memory access and is inversely influenced by its arithmetic
intensity."*  This module provides a closed-form model of that statement,
fitted from (or usable without) simulator measurements.  It is used by the
scheduler to predict slowdowns cheaply, and by the ablation benchmarks to
compare the analytical prediction with the full simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..config.errors import ConfigurationError


@dataclass(frozen=True)
class SensitivityModel:
    """Predicted slowdown as a function of LoI, remote access ratio and AI.

    The model form is::

        slowdown(LoI) = 1 + k · remote_ratio · f(AI) · (LoI / 100)

    where ``f(AI) = 1 / (1 + AI / ai_scale)`` captures the inverse influence
    of arithmetic intensity (compute-bound phases absorb interference), and
    ``k`` is the platform-dependent sensitivity constant.
    """

    k: float = 0.55
    ai_scale: float = 2.0

    def __post_init__(self) -> None:
        if self.k < 0 or self.ai_scale <= 0:
            raise ConfigurationError("sensitivity constants must be positive")

    def ai_factor(self, arithmetic_intensity: float) -> float:
        """The inverse arithmetic-intensity factor in (0, 1]."""
        ai = max(float(arithmetic_intensity), 0.0)
        return 1.0 / (1.0 + ai / self.ai_scale)

    def slowdown(
        self, loi: float, remote_access_ratio: float, arithmetic_intensity: float
    ) -> float:
        """Predicted slowdown (>= 1) at the given Level of Interference."""
        loi = max(float(loi), 0.0)
        ratio = float(np.clip(remote_access_ratio, 0.0, 1.0))
        return 1.0 + self.k * ratio * self.ai_factor(arithmetic_intensity) * (loi / 100.0)

    def relative_performance(
        self, loi: float, remote_access_ratio: float, arithmetic_intensity: float
    ) -> float:
        """Predicted relative performance (<= 1), the paper's Figure-10 y-axis."""
        return 1.0 / self.slowdown(loi, remote_access_ratio, arithmetic_intensity)

    # -- fitting -------------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        observations: Sequence[Mapping[str, float]],
        ai_scale: float = 2.0,
    ) -> "SensitivityModel":
        """Fit the sensitivity constant ``k`` from measured slowdowns.

        Each observation needs the keys ``loi``, ``remote_access_ratio``,
        ``arithmetic_intensity`` and ``slowdown``.  The fit is a closed-form
        least squares on ``k`` (the model is linear in it).
        """
        numerator = 0.0
        denominator = 0.0
        reference = cls(k=1.0, ai_scale=ai_scale)
        for obs in observations:
            x = (
                float(np.clip(obs["remote_access_ratio"], 0.0, 1.0))
                * reference.ai_factor(obs["arithmetic_intensity"])
                * (max(obs["loi"], 0.0) / 100.0)
            )
            y = max(float(obs["slowdown"]) - 1.0, 0.0)
            numerator += x * y
            denominator += x * x
        if denominator <= 0:
            raise ConfigurationError("cannot fit sensitivity model: no informative observations")
        return cls(k=numerator / denominator, ai_scale=ai_scale)

    def residuals(self, observations: Sequence[Mapping[str, float]]) -> np.ndarray:
        """Prediction errors (predicted - observed slowdown) for a set of observations."""
        errors = []
        for obs in observations:
            predicted = self.slowdown(
                obs["loi"], obs["remote_access_ratio"], obs["arithmetic_intensity"]
            )
            errors.append(predicted - float(obs["slowdown"]))
        return np.asarray(errors, dtype=np.float64)


@dataclass(frozen=True)
class InducedInterferenceModel:
    """Predicted interference coefficient from an application's pool traffic.

    The IC grows with the share of the link the application occupies::

        IC = 1 + c · (remote_bandwidth / link_capacity)

    matching the paper's observation that the IC is "solely related to the
    remote memory access but not directly influenced by arithmetic intensity"
    (Section 6.2).
    """

    c: float = 1.6

    def interference_coefficient(
        self, remote_bandwidth: float, link_capacity: float
    ) -> float:
        """Predicted IC for an application pushing ``remote_bandwidth`` onto the pool."""
        if link_capacity <= 0:
            raise ConfigurationError("link capacity must be positive")
        occupancy = float(np.clip(remote_bandwidth / link_capacity, 0.0, 1.0))
        return 1.0 + self.c * occupancy
