"""Capacity/bandwidth-driven deployment planning (Section 4.1's decision flow).

A user deploying an HPC application estimates the job's total memory footprint
and peak per-node usage, compares them with the per-node capacity to find the
minimum node count, and may then add nodes for aggregate bandwidth if the code
is memory-bound — trading off communication and core-hour cost.  With a memory
pool in the picture there is a second option: keep fewer nodes and lean on the
pool for capacity, accepting remote accesses.  These helpers quantify both
paths so the examples and benchmarks can reproduce that decision flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from ..config.errors import ConfigurationError
from ..models.memory_roofline import MemoryRoofline
from ..trace.footprint import ScalingCurve


@dataclass(frozen=True)
class NodeResources:
    """Per-node resources relevant to the planning decision."""

    memory_gb: float
    memory_bandwidth_gbs: float
    pool_gb_available: float = 0.0
    pool_bandwidth_gbs: float = 0.0

    def __post_init__(self) -> None:
        if self.memory_gb <= 0 or self.memory_bandwidth_gbs <= 0:
            raise ConfigurationError("node capacity and bandwidth must be positive")
        if self.pool_gb_available < 0 or self.pool_bandwidth_gbs < 0:
            raise ConfigurationError("pool resources must be non-negative")


@dataclass(frozen=True)
class DeploymentPlan:
    """One way to place a job on the machine."""

    nodes: int
    uses_pool: bool
    pool_gb_per_node: float
    expected_remote_access_ratio: float
    aggregate_bandwidth_gbs: float

    @property
    def description(self) -> str:
        """One-line description for reports."""
        if self.uses_pool:
            return (
                f"{self.nodes} nodes + {self.pool_gb_per_node:.0f} GB/node from the pool "
                f"(expected remote access {self.expected_remote_access_ratio:.0%})"
            )
        return f"{self.nodes} nodes, node-local memory only"


def minimum_nodes_for_capacity(total_footprint_gb: float, node: NodeResources) -> int:
    """Minimum node count so the footprint fits in node-local memory alone."""
    if total_footprint_gb <= 0:
        raise ConfigurationError("footprint must be positive")
    return max(int(ceil(total_footprint_gb / node.memory_gb)), 1)


def nodes_for_bandwidth(
    total_traffic_gb: float, target_runtime_s: float, node: NodeResources
) -> int:
    """Node count needed to stream ``total_traffic_gb`` within a target runtime."""
    if target_runtime_s <= 0:
        raise ConfigurationError("target runtime must be positive")
    required_bw = total_traffic_gb / target_runtime_s
    return max(int(ceil(required_bw / node.memory_bandwidth_gbs)), 1)


def plan_local_only(total_footprint_gb: float, node: NodeResources) -> DeploymentPlan:
    """The classic plan: add nodes until the job fits locally."""
    nodes = minimum_nodes_for_capacity(total_footprint_gb, node)
    return DeploymentPlan(
        nodes=nodes,
        uses_pool=False,
        pool_gb_per_node=0.0,
        expected_remote_access_ratio=0.0,
        aggregate_bandwidth_gbs=nodes * node.memory_bandwidth_gbs,
    )


def plan_with_pool(
    total_footprint_gb: float,
    node: NodeResources,
    nodes: int,
    scaling_curve: ScalingCurve | None = None,
) -> DeploymentPlan:
    """A pooled plan: run on ``nodes`` nodes and take the overflow from the pool.

    The expected remote access ratio is read from the application's
    bandwidth-capacity scaling curve when available (the fraction of accesses
    *not* captured by the locally-resident share of the footprint); otherwise
    it falls back to the capacity overflow fraction, which is exact for
    uniform access distributions.
    """
    if nodes <= 0:
        raise ConfigurationError("node count must be positive")
    per_node_footprint = total_footprint_gb / nodes
    overflow = max(per_node_footprint - node.memory_gb, 0.0)
    if overflow > node.pool_gb_available:
        raise ConfigurationError(
            f"the pool cannot supply {overflow:.0f} GB/node "
            f"(only {node.pool_gb_available:.0f} GB/node available)"
        )
    local_fraction = min(node.memory_gb / per_node_footprint, 1.0) if per_node_footprint > 0 else 1.0
    if scaling_curve is not None:
        remote_ratio = 1.0 - scaling_curve.access_share_at(local_fraction)
    else:
        remote_ratio = 1.0 - local_fraction
    return DeploymentPlan(
        nodes=nodes,
        uses_pool=overflow > 0,
        pool_gb_per_node=overflow,
        expected_remote_access_ratio=max(remote_ratio, 0.0),
        aggregate_bandwidth_gbs=nodes
        * (node.memory_bandwidth_gbs + (node.pool_bandwidth_gbs if overflow > 0 else 0.0)),
    )


def compare_plans(
    total_footprint_gb: float,
    node: NodeResources,
    scaling_curve: ScalingCurve | None = None,
    max_pool_nodes: int | None = None,
) -> dict:
    """Compare local-only and pooled deployment for one job.

    Returns both plans plus the memory-roofline estimate of the pooled plan's
    bandwidth headroom, which is what the paper suggests users weigh against
    the extra communication cost of more nodes.
    """
    local_plan = plan_local_only(total_footprint_gb, node)
    pooled_nodes = max_pool_nodes if max_pool_nodes is not None else max(local_plan.nodes // 2, 1)
    pooled_plan = plan_with_pool(total_footprint_gb, node, pooled_nodes, scaling_curve)
    roofline = MemoryRoofline(
        local_bandwidth=node.memory_bandwidth_gbs * 1e9,
        remote_bandwidth=max(node.pool_bandwidth_gbs, 1e-9) * 1e9,
    )
    return {
        "local_only": local_plan,
        "pooled": pooled_plan,
        "pooled_bandwidth_limit_gbs": roofline.attainable_bandwidth(
            pooled_plan.expected_remote_access_ratio
        )
        / 1e9,
        "node_saving": local_plan.nodes - pooled_plan.nodes,
    }
