"""Memory cost modelling (Table 1 and the TCO argument of Section 2).

The paper estimates the memory cost of the Top-10 supercomputers assuming an
HBM unit price of 3-5x that of DDR, and argues that disaggregation lets a
system be provisioned for the *peak of sums* instead of the *sum of peaks* of
its jobs' memory demands, reducing total cost of ownership.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..config.errors import ConfigurationError


@dataclass(frozen=True)
class MemoryPriceModel:
    """Unit prices used for the cost estimates.

    The paper quotes its estimates with DDR around $4/GB and HBM at 3-5x the
    DDR unit price; the defaults reproduce the mid-range of Table 1.
    """

    ddr_per_gb: float = 4.0
    hbm_multiplier_low: float = 3.0
    hbm_multiplier_high: float = 5.0

    def __post_init__(self) -> None:
        if self.ddr_per_gb <= 0:
            raise ConfigurationError("DDR unit price must be positive")
        if not 1.0 <= self.hbm_multiplier_low <= self.hbm_multiplier_high:
            raise ConfigurationError("HBM multipliers must satisfy 1 <= low <= high")

    @property
    def hbm_per_gb_mid(self) -> float:
        """Mid-range HBM unit price, $/GB."""
        return self.ddr_per_gb * (self.hbm_multiplier_low + self.hbm_multiplier_high) / 2.0

    def ddr_cost(self, gb_per_node: float, nodes: int) -> float:
        """System-wide DDR cost in dollars."""
        return gb_per_node * nodes * self.ddr_per_gb

    def hbm_cost(self, gb_per_node: float, nodes: int) -> tuple[float, float]:
        """(low, high) system-wide HBM cost estimates in dollars."""
        base = gb_per_node * nodes * self.ddr_per_gb
        return base * self.hbm_multiplier_low, base * self.hbm_multiplier_high

    def hbm_cost_mid(self, gb_per_node: float, nodes: int) -> float:
        """Mid-range system-wide HBM cost in dollars."""
        low, high = self.hbm_cost(gb_per_node, nodes)
        return (low + high) / 2.0


@dataclass(frozen=True)
class ProvisioningScenario:
    """Compare per-node (sum of peaks) and pooled (peak of sums) provisioning.

    ``job_peaks_gb`` holds the peak memory demand of the jobs running
    concurrently on one rack (one entry per node).  Per-node provisioning must
    size *every* node for the largest demand it might ever run; pooling only
    needs the node-local baseline plus enough pool capacity for the sum at the
    observed peak (Section 2: "peak-of-sums provisioning rather than
    sum-of-peaks").
    """

    job_peaks_gb: tuple[float, ...]
    node_local_gb: float

    def __post_init__(self) -> None:
        if not self.job_peaks_gb:
            raise ConfigurationError("scenario needs at least one job")
        if any(p < 0 for p in self.job_peaks_gb):
            raise ConfigurationError("job peaks must be non-negative")
        if self.node_local_gb < 0:
            raise ConfigurationError("node-local capacity must be non-negative")

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the rack."""
        return len(self.job_peaks_gb)

    def sum_of_peaks_gb(self) -> float:
        """Total memory if every node is provisioned for the worst job."""
        return max(self.job_peaks_gb) * self.n_nodes

    def peak_of_sums_gb(self) -> float:
        """Total memory if the rack is provisioned for the jobs' combined demand."""
        pooled_demand = sum(max(p - self.node_local_gb, 0.0) for p in self.job_peaks_gb)
        return self.node_local_gb * self.n_nodes + pooled_demand

    def savings_gb(self) -> float:
        """Capacity saved by pooling."""
        return max(self.sum_of_peaks_gb() - self.peak_of_sums_gb(), 0.0)

    def savings_fraction(self) -> float:
        """Relative capacity saving of pooled provisioning."""
        total = self.sum_of_peaks_gb()
        if total <= 0:
            return 0.0
        return self.savings_gb() / total

    def cost_savings(self, prices: MemoryPriceModel = MemoryPriceModel()) -> float:
        """Dollar savings of pooled provisioning (DDR pricing)."""
        return self.savings_gb() * prices.ddr_per_gb


def utilization_based_scenario(
    n_nodes: int,
    node_capacity_gb: float,
    utilization_samples: Sequence[float],
    node_local_fraction: float = 0.5,
) -> ProvisioningScenario:
    """Build a provisioning scenario from observed per-job memory utilisations.

    ``utilization_samples`` are the fractions of node memory the jobs actually
    use (the paper cites studies where fewer than 15% of jobs use more than
    75% of node memory).  The scenario keeps ``node_local_fraction`` of the
    node capacity local and lets the rest come from the pool.
    """
    if n_nodes <= 0 or node_capacity_gb <= 0:
        raise ConfigurationError("need a positive number of nodes and capacity")
    samples = np.asarray(list(utilization_samples), dtype=np.float64)
    if len(samples) == 0:
        raise ConfigurationError("need at least one utilisation sample")
    if np.any((samples < 0) | (samples > 1)):
        raise ConfigurationError("utilisation samples must be in [0, 1]")
    rng_idx = np.resize(np.arange(len(samples)), n_nodes)
    peaks = tuple(float(samples[i]) * node_capacity_gb for i in rng_idx)
    return ProvisioningScenario(
        job_peaks_gb=peaks,
        node_local_gb=node_capacity_gb * node_local_fraction,
    )
