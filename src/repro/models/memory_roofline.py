"""Extended memory roofline for multi-tier systems (local-to-remote ratio).

Section 5 of the paper builds on the memory roofline model of Ding et al.
(their reference [8]): the attainable *memory* performance of a phase depends
on how its traffic splits between the fast local tier and the slower remote
tier.  Tuning towards higher local-to-remote (L:R) ratios raises the limit
towards the fast tier's bandwidth; using both tiers concurrently can exceed
the fast tier alone — which is why the paper recommends access ratios that
*match the bandwidth ratio* of the tiers rather than pushing everything local.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config.tiers import TieredMemoryConfig


@dataclass(frozen=True)
class MemoryRoofline:
    """Attainable memory bandwidth as a function of the remote access ratio.

    The model assumes the two tiers transfer concurrently: with a remote
    access ratio r, moving B bytes takes ``max((1-r)·B / BW_local,
    r·B / BW_remote)`` seconds, so the attainable aggregate bandwidth is::

        BW(r) = 1 / max((1-r)/BW_local, r/BW_remote)

    The maximum sits exactly at the bandwidth ratio R_BW = BW_remote /
    (BW_local + BW_remote) — the paper's upper reference point — where both
    tiers finish at the same time and the application enjoys their sum.
    """

    local_bandwidth: float
    remote_bandwidth: float

    @classmethod
    def from_config(cls, config: TieredMemoryConfig) -> "MemoryRoofline":
        """Build the model from a two-tier configuration."""
        return cls(
            local_bandwidth=config.local.bandwidth,
            remote_bandwidth=config.remote.bandwidth,
        )

    @property
    def optimal_remote_ratio(self) -> float:
        """The remote access ratio that maximises aggregate bandwidth (= R_BW)."""
        return self.remote_bandwidth / (self.local_bandwidth + self.remote_bandwidth)

    @property
    def peak_bandwidth(self) -> float:
        """Aggregate bandwidth at the optimal ratio, bytes/s."""
        return self.local_bandwidth + self.remote_bandwidth

    def attainable_bandwidth(self, remote_ratio: float) -> float:
        """Attainable memory bandwidth (bytes/s) at a given remote access ratio."""
        r = float(np.clip(remote_ratio, 0.0, 1.0))
        local_time = (1.0 - r) / self.local_bandwidth
        remote_time = r / self.remote_bandwidth
        limit = max(local_time, remote_time)
        if limit <= 0:
            return self.peak_bandwidth
        return 1.0 / limit

    def attainable_time(self, total_bytes: float, remote_ratio: float) -> float:
        """Time to move ``total_bytes`` at a given remote ratio, seconds."""
        bw = self.attainable_bandwidth(remote_ratio)
        return total_bytes / bw if bw > 0 else float("inf")

    def curve(self, n_points: int = 101) -> tuple[np.ndarray, np.ndarray]:
        """(remote ratio, attainable bandwidth GB/s) series for plotting."""
        ratios = np.linspace(0.0, 1.0, n_points)
        bandwidth = np.array([self.attainable_bandwidth(r) for r in ratios]) / 1e9
        return ratios, bandwidth

    def speedup_over_local_only(self, remote_ratio: float) -> float:
        """Memory-bandwidth speedup versus keeping all traffic local."""
        return self.attainable_bandwidth(remote_ratio) / self.local_bandwidth

    def classify(self, remote_ratio: float, capacity_ratio: float) -> str:
        """The paper's optimisation guidance for a measured access ratio.

        Returns one of:

        * ``"fast-tier-bound"`` — below the bandwidth ratio: the fast tier
          limits memory performance (headroom on the pool is unused),
        * ``"balanced"`` — between the capacity ratio and the bandwidth ratio
          (within tolerance): little to gain from data-placement tuning,
        * ``"slow-tier-bound"`` — above the bandwidth ratio: too many accesses
          go to the pool and it throttles the application; data placement (or
          tier sizing) should be revisited.
        """
        r = float(remote_ratio)
        r_bw = self.optimal_remote_ratio
        low = min(capacity_ratio, r_bw)
        high = max(capacity_ratio, r_bw)
        if r > high + 1e-9:
            return "slow-tier-bound"
        if r < low - 1e-9:
            return "fast-tier-bound"
        return "balanced"


def optimization_priority(
    phase_ratios: Sequence[tuple[str, float, float]],
    roofline: MemoryRoofline,
) -> list[dict]:
    """Rank phases by how far their access ratio sits from the reference band.

    ``phase_ratios`` is a sequence of (label, remote access ratio, duration
    weight).  The paper's guidance: the *dominant* phase with the largest
    mismatch should be optimised first (Section 5.2).
    """
    ranked = []
    r_bw = roofline.optimal_remote_ratio
    for label, ratio, weight in phase_ratios:
        mismatch = max(ratio - r_bw, 0.0)
        ranked.append(
            {
                "phase": label,
                "remote_access_ratio": ratio,
                "bandwidth_ratio": r_bw,
                "mismatch": mismatch,
                "duration_weight": weight,
                "priority": mismatch * weight,
            }
        )
    ranked.sort(key=lambda item: item["priority"], reverse=True)
    return ranked
