"""Analytical models: roofline, memory roofline, interference, cost, planning."""

from .capacity_planning import (
    DeploymentPlan,
    NodeResources,
    compare_plans,
    minimum_nodes_for_capacity,
    nodes_for_bandwidth,
    plan_local_only,
    plan_with_pool,
)
from .cost import MemoryPriceModel, ProvisioningScenario, utilization_based_scenario
from .interference_model import InducedInterferenceModel, SensitivityModel
from .memory_roofline import MemoryRoofline, optimization_priority
from .roofline import RooflineModel, RooflinePoint, roofline_series

__all__ = [
    "DeploymentPlan",
    "NodeResources",
    "compare_plans",
    "minimum_nodes_for_capacity",
    "nodes_for_bandwidth",
    "plan_local_only",
    "plan_with_pool",
    "MemoryPriceModel",
    "ProvisioningScenario",
    "utilization_based_scenario",
    "InducedInterferenceModel",
    "SensitivityModel",
    "MemoryRoofline",
    "optimization_priority",
    "RooflineModel",
    "RooflinePoint",
    "roofline_series",
]
