"""Roofline model (Williams et al.) for the emulated platform.

Section 3.4 of the paper uses the standard roofline model to place each
application phase by its arithmetic intensity and achieved throughput
(Figure 5), and extends the bandwidth slope when an additional memory tier is
added to the system (the dashed line in the figure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..config.testbed import SKYLAKE_EMULATION, TestbedConfig


@dataclass(frozen=True)
class RooflinePoint:
    """One measured (phase) point on the roofline plot."""

    label: str
    arithmetic_intensity: float
    gflops: float

    @property
    def memory_bound(self) -> bool:
        """Whether the point's attainable limit is the bandwidth slope.

        Evaluated against the default platform's machine balance; use
        :meth:`RooflineModel.is_memory_bound` for other platforms.
        """
        return self.arithmetic_intensity < SKYLAKE_EMULATION.machine_balance


@dataclass(frozen=True)
class RooflineModel:
    """Attainable performance P = min(F, B · I).

    Attributes
    ----------
    peak_flops:
        Peak compute rate F, flop/s.
    memory_bandwidth:
        Peak memory bandwidth B of the baseline (single-tier) system, bytes/s.
    extra_tier_bandwidth:
        Additional bandwidth contributed by an extra memory tier, bytes/s —
        the dashed extension of Figure 5 (0 for the plain model).
    """

    peak_flops: float
    memory_bandwidth: float
    extra_tier_bandwidth: float = 0.0

    @classmethod
    def from_testbed(cls, testbed: TestbedConfig = SKYLAKE_EMULATION, include_remote_tier: bool = False) -> "RooflineModel":
        """Build the roofline of the emulation platform.

        With ``include_remote_tier`` the remote tier's bandwidth is added to
        the slope, reproducing the dashed line of Figure 5.
        """
        return cls(
            peak_flops=testbed.peak_flops,
            memory_bandwidth=testbed.local_bandwidth,
            extra_tier_bandwidth=testbed.remote_bandwidth if include_remote_tier else 0.0,
        )

    @property
    def total_bandwidth(self) -> float:
        """Bandwidth of the (possibly extended) memory system, bytes/s."""
        return self.memory_bandwidth + self.extra_tier_bandwidth

    @property
    def ridge_point(self) -> float:
        """Machine balance: the arithmetic intensity where the roofs meet (flop/byte)."""
        return self.peak_flops / self.total_bandwidth

    def attainable(self, arithmetic_intensity: float) -> float:
        """Attainable performance (flop/s) at an arithmetic intensity."""
        ai = max(float(arithmetic_intensity), 0.0)
        return min(self.peak_flops, self.total_bandwidth * ai)

    def attainable_gflops(self, arithmetic_intensity: float) -> float:
        """Attainable performance in Gflop/s."""
        return self.attainable(arithmetic_intensity) / 1e9

    def is_memory_bound(self, arithmetic_intensity: float) -> bool:
        """Whether a phase at this intensity is limited by memory bandwidth."""
        return arithmetic_intensity < self.ridge_point

    def efficiency(self, point: RooflinePoint) -> float:
        """Achieved fraction of the attainable performance for a measured point."""
        attainable = self.attainable_gflops(point.arithmetic_intensity)
        if attainable <= 0:
            return 0.0
        return min(point.gflops / attainable, 1.0)

    def curve(
        self, intensities: Sequence[float] | None = None, n_points: int = 64
    ) -> tuple[np.ndarray, np.ndarray]:
        """(intensity, attainable Gflop/s) series for plotting the roof.

        Intensities default to a log-spaced sweep covering Figure 5's x-axis
        (0.01 to 1024 flop/byte).
        """
        if intensities is None:
            x = np.logspace(np.log10(0.01), np.log10(1024.0), n_points)
        else:
            x = np.asarray(list(intensities), dtype=np.float64)
        y = np.minimum(self.peak_flops, self.total_bandwidth * x) / 1e9
        return x, y


def roofline_series(
    points: Iterable[RooflinePoint],
    testbed: TestbedConfig = SKYLAKE_EMULATION,
) -> dict:
    """Assemble everything needed to render Figure 5 as plain data.

    Returns the baseline roof, the extended (extra tier) roof and the measured
    application-phase points.
    """
    base = RooflineModel.from_testbed(testbed, include_remote_tier=False)
    extended = RooflineModel.from_testbed(testbed, include_remote_tier=True)
    base_x, base_y = base.curve()
    ext_x, ext_y = extended.curve()
    return {
        "peak_gflops": testbed.peak_flops / 1e9,
        "base_roof": {"intensity": base_x, "gflops": base_y, "ridge": base.ridge_point},
        "extended_roof": {"intensity": ext_x, "gflops": ext_y, "ridge": extended.ridge_point},
        "points": [
            {
                "label": p.label,
                "intensity": p.arithmetic_intensity,
                "gflops": p.gflops,
                "memory_bound": base.is_memory_bound(p.arithmetic_intensity),
                "efficiency": base.efficiency(p),
            }
            for p in points
        ],
    }
